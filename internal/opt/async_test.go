package opt

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"simcal/internal/core"
)

// asyncFrozenClock pins elapsed fields to zero so results from separate
// runs compare bitwise.
func asyncFrozenClock() func() time.Time {
	t0 := time.Unix(42, 0)
	return func() time.Time { return t0 }
}

// jitterSim wraps an evaluator with a per-call pseudo-random sleep, so
// completions land out of submission order and the async driver's
// arrival order is genuinely scrambled. The sleep source is independent
// of the calibration RNG: timing must never feed the search.
func jitterSim(inner core.Evaluator, seed int64, max time.Duration) core.Evaluator {
	var mu sync.Mutex
	rng := rand.New(rand.NewSource(seed))
	return func(ctx context.Context, p core.Point) (float64, error) {
		mu.Lock()
		d := time.Duration(rng.Int63n(int64(max)))
		mu.Unlock()
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return 0, ctx.Err()
		}
		return inner(ctx, p)
	}
}

func sameHistory(t *testing.T, a, b *core.Result) {
	t.Helper()
	if a.Best.Loss != b.Best.Loss {
		t.Fatalf("best loss: %v vs %v (not bitwise)", a.Best.Loss, b.Best.Loss)
	}
	if len(a.History) != len(b.History) {
		t.Fatalf("history length: %d vs %d", len(a.History), len(b.History))
	}
	for i := range a.History {
		x, y := a.History[i], b.History[i]
		if x.Loss != y.Loss {
			t.Fatalf("history[%d].Loss: %v vs %v (not bitwise)", i, x.Loss, y.Loss)
		}
		for j := range x.Unit {
			if x.Unit[j] != y.Unit[j] {
				t.Fatalf("history[%d].Unit[%d]: %v vs %v (not bitwise)", i, j, x.Unit[j], y.Unit[j])
			}
		}
	}
}

// TestAsyncBOSeededReplayBitwise is the heart of the replay contract:
// a live async run with genuinely scrambled completion timing records
// its completion order; a second run forced to consume in that order
// reproduces the history bitwise even though its own timing differs.
func TestAsyncBOSeededReplayBitwise(t *testing.T) {
	clock := asyncFrozenClock()
	run := func(replay []int, jitterSeed int64) (*core.Result, []int) {
		alg := NewAsyncBO()
		alg.InitSamples = 8
		alg.Replay = replay
		c := &core.Calibrator{
			Space:          optSpace,
			Simulator:      jitterSim(sphere, jitterSeed, 2*time.Millisecond),
			Algorithm:      alg,
			MaxEvaluations: 40,
			Workers:        4,
			Seed:           31,
			Clock:          clock,
		}
		res, err := c.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return res, alg.CompletionOrder()
	}
	ref, order := run(nil, 1)
	if len(order) != 40 {
		t.Fatalf("recorded completion order has %d entries, want 40", len(order))
	}
	// Different jitter seed: the replay's own completion timing differs
	// from the original's, so only the forced order can explain a
	// bitwise match.
	rep, order2 := run(order, 999)
	for i := range order {
		if order[i] != order2[i] {
			t.Fatalf("replay recorded a different order at %d: %d vs %d", i, order2[i], order[i])
		}
	}
	sameHistory(t, ref, rep)
}

// TestAsyncBOFantasyRowsNeverLeak: constant-liar imputations are
// surrogate-internal. The run's history, its checkpoint file, and the
// result must contain only real simulator losses — every recorded loss
// re-evaluates to itself.
func TestAsyncBOFantasyRowsNeverLeak(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.json")
	alg := NewAsyncBO()
	alg.InitSamples = 6
	c := &core.Calibrator{
		Space:          optSpace,
		Simulator:      jitterSim(sphere, 5, time.Millisecond),
		Algorithm:      alg,
		MaxEvaluations: 30,
		Workers:        4,
		Seed:           33,
		Checkpoint:     &core.CheckpointSpec{Path: path, Every: 10},
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	check := func(where string, s core.Sample) {
		t.Helper()
		real, err := sphere(context.Background(), s.Point)
		if err != nil {
			t.Fatal(err)
		}
		if s.Loss != real {
			t.Errorf("%s: stored loss %v, re-evaluation gives %v — an imputed value leaked", where, s.Loss, real)
		}
	}
	for i, s := range res.History {
		check(fmt.Sprintf("history[%d]", i), s)
	}
	check("best", res.Best)
	snap, err := core.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Samples) == 0 {
		t.Fatal("checkpoint recorded no samples")
	}
	for _, s := range snap.Samples {
		check("checkpoint", s)
	}
}

// TestAsyncBOBudgetExact: the async driver spends exactly the
// evaluation budget — in-flight gating must neither overrun nor strand
// the final evaluations.
func TestAsyncBOBudgetExact(t *testing.T) {
	res := calibrate(t, NewAsyncBO(), sphere, 60, 41)
	if res.Evaluations != 60 {
		t.Errorf("async-bo used %d evaluations, want exactly 60", res.Evaluations)
	}
}

// TestAsyncBOFindsSphereMinimum: quality guard — asynchronous proposals
// with constant-liar conditioning must still home in on the optimum.
func TestAsyncBOFindsSphereMinimum(t *testing.T) {
	res := calibrate(t, NewAsyncBO(), sphere, 120, 43)
	if res.Best.Loss > 0.5 {
		t.Errorf("async-bo best loss = %v after 120 evals, want < 0.5", res.Best.Loss)
	}
}

// TestAsyncBOHandlesFailingSimulator: all-+Inf losses degrade to random
// exploration without stalling the driver loop.
func TestAsyncBOHandlesFailingSimulator(t *testing.T) {
	allInf := func(_ context.Context, _ core.Point) (float64, error) {
		return math.Inf(1), nil
	}
	res := calibrate(t, NewAsyncBO(), allInf, 40, 47)
	if res.Evaluations != 40 {
		t.Errorf("async-bo spent %d evaluations on all-+Inf losses, want 40", res.Evaluations)
	}
}

// asyncMetricsObserver captures the AsyncObserver stream for assertions.
type asyncMetricsObserver struct {
	mu          sync.Mutex
	proposals   int
	fantasies   int
	retractions int
	consumed    []int // seq stream in consumption order
	indices     []int
}

func (o *asyncMetricsObserver) CalibrationStarted(core.RunInfo)                         {}
func (o *asyncMetricsObserver) BatchProposed(int)                                       {}
func (o *asyncMetricsObserver) EvalCompleted(core.Sample, time.Duration, time.Duration) {}
func (o *asyncMetricsObserver) IncumbentImproved(core.Sample)                           {}
func (o *asyncMetricsObserver) SurrogateFitted(int, time.Duration)                      {}
func (o *asyncMetricsObserver) AcquisitionSolved(int, time.Duration, time.Duration)     {}
func (o *asyncMetricsObserver) CalibrationFinished(*core.Result)                        {}

func (o *asyncMetricsObserver) AsyncProposed(seq, fantasies int, idle time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.proposals++
	o.fantasies += fantasies
}

func (o *asyncMetricsObserver) AsyncCompletionConsumed(seq, index int, loss float64, retracted bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.consumed = append(o.consumed, seq)
	o.indices = append(o.indices, index)
	if retracted {
		o.retractions++
	}
}

// TestAsyncBOObserverStream: one AsyncProposed per evaluation, indices
// contiguous in consumption order, fantasy rows conditioned and later
// retracted once the surrogate phase begins.
func TestAsyncBOObserverStream(t *testing.T) {
	obs := &asyncMetricsObserver{}
	alg := NewAsyncBO()
	alg.InitSamples = 8
	c := &core.Calibrator{
		Space:          optSpace,
		Simulator:      jitterSim(sphere, 9, time.Millisecond),
		Algorithm:      alg,
		MaxEvaluations: 48,
		Workers:        4,
		Seed:           51,
		Observer:       obs,
	}
	res, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if obs.proposals != res.Evaluations {
		t.Errorf("AsyncProposed fired %d times for %d evaluations", obs.proposals, res.Evaluations)
	}
	if len(obs.consumed) != res.Evaluations {
		t.Errorf("AsyncCompletionConsumed fired %d times for %d evaluations", len(obs.consumed), res.Evaluations)
	}
	for i, idx := range obs.indices {
		if idx != i {
			t.Fatalf("consumption index %d reported as %d, want contiguous", i, idx)
		}
	}
	// With 4 in flight and 40 surrogate-phase proposals, fits condition
	// on liar rows and the corresponding completions retract them.
	if obs.fantasies == 0 {
		t.Error("no constant-liar fantasy rows were conditioned on in 40 surrogate-phase proposals")
	}
	if obs.retractions == 0 {
		t.Error("no fantasy rows were retracted despite fantasy-conditioned fits")
	}
	if order := alg.CompletionOrder(); len(order) != len(obs.consumed) {
		t.Fatalf("CompletionOrder has %d entries, observer saw %d", len(order), len(obs.consumed))
	} else {
		for i := range order {
			if order[i] != obs.consumed[i] {
				t.Fatalf("CompletionOrder[%d] = %d, observer saw %d", i, order[i], obs.consumed[i])
			}
		}
	}
}

// TestAsyncBOCheckpointResumeBitwise: an async run killed after a
// checkpoint boundary leaves a snapshot with a consumption order and
// in-flight records. Resuming from it (snapshot prefix replayed, live
// completions afterwards) records a total order; a fresh run forced to
// consume in exactly that order is bitwise-identical — checkpoints,
// resume, and trace replay are one contract.
func TestAsyncBOCheckpointResumeBitwise(t *testing.T) {
	clock := asyncFrozenClock()
	base := func(alg core.Algorithm, sim core.Simulator) *core.Calibrator {
		return &core.Calibrator{
			Space:          optSpace,
			Simulator:      sim,
			Algorithm:      alg,
			MaxEvaluations: 36,
			Workers:        4,
			Seed:           61,
			Clock:          clock,
		}
	}

	// "Killed" run: budget cut to 24, snapshots every 10 — the snapshot
	// at the 20-eval boundary is what a kill there leaves behind, and it
	// must carry in-flight submissions (width 4 with one consumed → 3).
	path := filepath.Join(t.TempDir(), "ck.json")
	killed := NewAsyncBO()
	killed.InitSamples = 8
	kc := base(killed, jitterSim(sphere, 3, time.Millisecond))
	kc.MaxEvaluations = 24
	kc.Checkpoint = &core.CheckpointSpec{Path: path, Every: 10}
	if _, err := kc.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	snap, err := core.LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Evaluations != 20 || len(snap.Order) != 20 {
		t.Fatalf("snapshot at %d evaluations with %d order entries, want the 20-eval boundary", snap.Evaluations, len(snap.Order))
	}
	if len(snap.InFlight) == 0 {
		t.Fatal("snapshot records no in-flight submissions; a width-4 run checkpointed mid-flight must")
	}

	// Resume to the full budget: the snapshot's 20 evaluations replay
	// (forced order, simulator untouched), the in-flight ones re-run for
	// real, and the rest arrive live. Record the total order.
	resumed := NewAsyncBO()
	resumed.InitSamples = 8
	rc := base(resumed, jitterSim(sphere, 4, time.Millisecond))
	rc.Resume = snap
	res, err := rc.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluations != 36 {
		t.Fatalf("resumed run completed %d evaluations, want 36", res.Evaluations)
	}
	order := resumed.CompletionOrder()
	if len(order) != 36 {
		t.Fatalf("resumed run recorded %d order entries, want 36", len(order))
	}
	// The replayed prefix is bitwise the snapshot's samples.
	for i, want := range snap.Samples {
		if res.History[i].Loss != want.Loss {
			t.Fatalf("history[%d].Loss = %v, snapshot stored %v", i, res.History[i].Loss, want.Loss)
		}
	}

	// A fresh uninterrupted run forced to the resumed run's total order
	// reproduces it bitwise.
	fresh := NewAsyncBO()
	fresh.InitSamples = 8
	fresh.Replay = order
	fres, err := base(fresh, jitterSim(sphere, 5, time.Millisecond)).Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	sameHistory(t, res, fres)
}

// TestByNameAsyncBO: the registry resolves async-bo, and unknown names
// list the registered vocabulary sorted — so the error is directly
// actionable.
func TestByNameAsyncBO(t *testing.T) {
	alg, err := ByName("async-bo")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := alg.(*AsyncBayesOpt); !ok {
		t.Fatalf("ByName(async-bo) = %T, want *AsyncBayesOpt", alg)
	}
	if alg.Name() != "async-bo" {
		t.Errorf("Name() = %q", alg.Name())
	}

	_, err = ByName("nope")
	if err == nil {
		t.Fatal("ByName accepted an unknown algorithm")
	}
	msg := err.Error()
	sorted := sortedAlgorithmNames()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] > sorted[i] {
			t.Fatalf("sortedAlgorithmNames not sorted: %v", sorted)
		}
	}
	want := strings.Join(sorted, ", ")
	if !strings.Contains(msg, want) {
		t.Errorf("unknown-algorithm error %q does not list the sorted registry %q", msg, want)
	}
	for _, name := range AlgorithmNames {
		if _, err := ByName(name); err != nil {
			t.Errorf("AlgorithmNames lists %q but ByName rejects it: %v", name, err)
		}
	}
	if !strings.Contains(AlgorithmUsage(), "async-bo") {
		t.Errorf("AlgorithmUsage() = %q does not mention async-bo", AlgorithmUsage())
	}
}
