// Package mpisim implements case study #2's simulator of MPI benchmark
// executions on an HPC cluster, at 16 selectable levels of detail
// (Table 4): 4 network options × 2 compute-node options × 2 adaptive-
// protocol options. Each version exposes exactly the calibratable
// parameters its level of detail introduces.
package mpisim

import (
	"fmt"

	"simcal/internal/core"
	"simcal/internal/mpi"
	"simcal/internal/platform"
	"simcal/internal/stats"
)

// NetworkOption selects the network level of detail.
type NetworkOption int

const (
	// Backbone is a single shared backbone link.
	Backbone NetworkOption = iota
	// BackboneLinks adds a dedicated link per compute node in series
	// with the backbone.
	BackboneLinks
	// Tree4 is a 4-ary tree of switches.
	Tree4
	// FatTree is a Summit-like three-level non-blocking fat tree
	// (18 nodes per level-1 switch).
	FatTree
)

func (n NetworkOption) String() string {
	switch n {
	case Backbone:
		return "backbone"
	case BackboneLinks:
		return "backbone-links"
	case Tree4:
		return "tree4"
	case FatTree:
		return "fat-tree"
	default:
		return fmt.Sprintf("NetworkOption(%d)", int(n))
	}
}

// NodeOption selects the compute-node level of detail.
type NodeOption int

const (
	// SimpleNode abstracts the node as cores behind a NIC.
	SimpleNode NodeOption = iota
	// ComplexNode models two sockets, an X-Bus, and per-socket PCIe.
	ComplexNode
)

func (n NodeOption) String() string {
	if n == ComplexNode {
		return "complex-node"
	}
	return "simple-node"
}

// ProtocolOption selects the adaptive-protocol level of detail.
type ProtocolOption int

const (
	// FixedPoints calibrates three bandwidth factors with change points
	// known a priori (measured empirically on the real system).
	FixedPoints ProtocolOption = iota
	// FreePoints additionally calibrates the two change points,
	// increasing dimensionality by two.
	FreePoints
)

func (p ProtocolOption) String() string {
	if p == FreePoints {
		return "free-points"
	}
	return "fixed-points"
}

// KnownChangePoints are the empirically determined protocol switch sizes
// used by the FixedPoints option (eager→intermediate→rendez-vous).
var KnownChangePoints = [2]float64{8192, 131072} // 2^13, 2^17 bytes

// Version is one of the 16 simulator versions of Table 4.
type Version struct {
	Network  NetworkOption
	Node     NodeOption
	Protocol ProtocolOption
}

// Name returns a stable identifier like "fat-tree/complex-node/free-points".
func (v Version) Name() string {
	return fmt.Sprintf("%s/%s/%s", v.Network, v.Node, v.Protocol)
}

// AllVersions enumerates the 16 versions deterministically.
func AllVersions() []Version {
	var out []Version
	for _, nd := range []NodeOption{SimpleNode, ComplexNode} {
		for _, nw := range []NetworkOption{Backbone, BackboneLinks, Tree4, FatTree} {
			for _, pr := range []ProtocolOption{FixedPoints, FreePoints} {
				out = append(out, Version{Network: nw, Node: nd, Protocol: pr})
			}
		}
	}
	return out
}

// HighestDetail is the most detailed version (11 parameters).
var HighestDetail = Version{Network: BackboneLinks, Node: ComplexNode, Protocol: FreePoints}

// LowestDetail is the least detailed version (6 parameters).
var LowestDetail = Version{Network: Backbone, Node: SimpleNode, Protocol: FixedPoints}

// Parameter names.
const (
	ParamBackboneBW  = "backbone_bw_exp" // 2^x bytes/s
	ParamBackboneLat = "backbone_latency"
	ParamLinkBW      = "link_bw_exp" // 2^x bytes/s (node links / tree links)
	ParamLinkLat     = "link_latency"
	ParamNICBW       = "nic_bw_exp"
	ParamXBusBW      = "xbus_bw_exp"
	ParamPCIeBW      = "pcie_bw_exp"
	ParamFactor1     = "bw_factor_small"
	ParamFactor2     = "bw_factor_medium"
	ParamFactor3     = "bw_factor_large"
	ParamChange1     = "change_point_1_exp" // 2^x bytes
	ParamChange2     = "change_point_2_exp"
)

// Space returns the calibration search space for the version. Bandwidth
// ranges span at least an order of magnitude below and above Summit's
// specifications (searched in exponent space), latencies are in
// [0, 1ms], protocol factors in [0.05, 1], and free change points range
// over the full measured message-size band.
func (v Version) Space() core.Space {
	var sp core.Space
	switch v.Network {
	case Backbone:
		sp = append(sp,
			core.ParamSpec{Name: ParamBackboneBW, Kind: core.Exponential, Min: 25, Max: 42},
			core.ParamSpec{Name: ParamBackboneLat, Kind: core.Continuous, Min: 0, Max: 0.001},
		)
	case BackboneLinks:
		sp = append(sp,
			core.ParamSpec{Name: ParamBackboneBW, Kind: core.Exponential, Min: 25, Max: 42},
			core.ParamSpec{Name: ParamBackboneLat, Kind: core.Continuous, Min: 0, Max: 0.001},
			core.ParamSpec{Name: ParamLinkBW, Kind: core.Exponential, Min: 25, Max: 42},
			core.ParamSpec{Name: ParamLinkLat, Kind: core.Continuous, Min: 0, Max: 0.001},
		)
	case Tree4, FatTree:
		sp = append(sp,
			core.ParamSpec{Name: ParamLinkBW, Kind: core.Exponential, Min: 25, Max: 42},
			core.ParamSpec{Name: ParamLinkLat, Kind: core.Continuous, Min: 0, Max: 0.001},
		)
	}
	switch v.Node {
	case SimpleNode:
		sp = append(sp, core.ParamSpec{Name: ParamNICBW, Kind: core.Exponential, Min: 25, Max: 42})
	case ComplexNode:
		sp = append(sp,
			core.ParamSpec{Name: ParamXBusBW, Kind: core.Exponential, Min: 25, Max: 42},
			core.ParamSpec{Name: ParamPCIeBW, Kind: core.Exponential, Min: 25, Max: 42},
		)
	}
	sp = append(sp,
		core.ParamSpec{Name: ParamFactor1, Kind: core.Continuous, Min: 0.05, Max: 1},
		core.ParamSpec{Name: ParamFactor2, Kind: core.Continuous, Min: 0.05, Max: 1},
		core.ParamSpec{Name: ParamFactor3, Kind: core.Continuous, Min: 0.05, Max: 1},
	)
	if v.Protocol == FreePoints {
		sp = append(sp,
			core.ParamSpec{Name: ParamChange1, Kind: core.Exponential, Min: 10, Max: 22},
			core.ParamSpec{Name: ParamChange2, Kind: core.Exponential, Min: 10, Max: 22},
		)
	}
	return sp
}

// Config holds decoded parameter values plus simulation knobs.
type Config struct {
	BackboneBW  float64
	BackboneLat float64
	LinkBW      float64
	LinkLat     float64
	NICBW       float64
	XBusBW      float64
	PCIeBW      float64
	Protocol    mpi.Protocol

	// RanksPerNode defaults to 6 (the paper's Summit runs).
	RanksPerNode int
	// HostLatency is the fixed per-message software latency (seconds).
	HostLatency float64
	// Noise, when non-nil, makes the simulation stochastic (ground-truth
	// generation only).
	Noise *NoiseModel
}

// NoiseModel captures run-to-run platform variability for ground truth.
type NoiseModel struct {
	Seed int64
	// BandwidthSpread perturbs every bandwidth for the run.
	BandwidthSpread float64
	// LatencySpread perturbs latencies for the run.
	LatencySpread float64
	// NodeSpread perturbs each node's NIC/PCIe bandwidth (heterogeneity).
	NodeSpread float64
}

// DecodeConfig maps a calibration point into a Config for this version.
func (v Version) DecodeConfig(p core.Point) Config {
	cfg := Config{}
	switch v.Network {
	case Backbone:
		cfg.BackboneBW = p[ParamBackboneBW]
		cfg.BackboneLat = p[ParamBackboneLat]
	case BackboneLinks:
		cfg.BackboneBW = p[ParamBackboneBW]
		cfg.BackboneLat = p[ParamBackboneLat]
		cfg.LinkBW = p[ParamLinkBW]
		cfg.LinkLat = p[ParamLinkLat]
	case Tree4, FatTree:
		cfg.LinkBW = p[ParamLinkBW]
		cfg.LinkLat = p[ParamLinkLat]
	}
	switch v.Node {
	case SimpleNode:
		cfg.NICBW = p[ParamNICBW]
	case ComplexNode:
		cfg.XBusBW = p[ParamXBusBW]
		cfg.PCIeBW = p[ParamPCIeBW]
	}
	cfg.Protocol.Factors = [3]float64{p[ParamFactor1], p[ParamFactor2], p[ParamFactor3]}
	if v.Protocol == FreePoints {
		c1, c2 := p[ParamChange1], p[ParamChange2]
		if c1 > c2 {
			c1, c2 = c2, c1
		}
		cfg.Protocol.ChangePoints = [2]float64{c1, c2}
	} else {
		cfg.Protocol.ChangePoints = KnownChangePoints
	}
	return cfg
}

// Scenario is one ground-truth data point: a benchmark at a message size
// on a node count.
type Scenario struct {
	Benchmark mpi.Benchmark
	Nodes     int
	MsgBytes  float64
	// Rounds defaults to 4; Seed drives BiRandom pairing.
	Rounds int
	Seed   int64
}

// Simulate runs the benchmark under the version's level of detail and
// returns the aggregate data transfer rate in bytes/s. Deterministic
// unless cfg.Noise is set.
func Simulate(v Version, cfg Config, sc Scenario) (float64, error) {
	if sc.Nodes < 2 {
		return 0, fmt.Errorf("mpisim: need at least 2 nodes, got %d", sc.Nodes)
	}
	if cfg.RanksPerNode == 0 {
		cfg.RanksPerNode = 6
	}
	var rng *stats.RNG
	bwMult, latMult := 1.0, 1.0
	if cfg.Noise != nil {
		rng = stats.NewRNG(cfg.Noise.Seed)
		bwMult = rng.NoisyScale(cfg.Noise.BandwidthSpread)
		latMult = rng.NoisyScale(cfg.Noise.LatencySpread)
	}
	nodeMult := func() float64 {
		if rng == nil || cfg.Noise.NodeSpread <= 0 {
			return 1
		}
		return rng.NoisyScale(cfg.Noise.NodeSpread)
	}

	p := platform.New()
	hosts := make([]*platform.Host, sc.Nodes)
	for i := range hosts {
		hosts[i] = p.AddHost(platform.NewHost(fmt.Sprintf("node%04d", i), cfg.RanksPerNode, 1e9))
	}
	switch v.Network {
	case Backbone:
		if cfg.BackboneBW <= 0 {
			return 0, fmt.Errorf("mpisim: backbone requires positive bandwidth")
		}
		bb := platform.NewLink("backbone", cfg.BackboneBW*bwMult, cfg.BackboneLat*latMult)
		platform.SharedLinkTopology(p, hosts, bb)
	case BackboneLinks:
		if cfg.BackboneBW <= 0 || cfg.LinkBW <= 0 {
			return 0, fmt.Errorf("mpisim: backbone-links requires positive bandwidths")
		}
		bb := platform.NewLink("backbone", cfg.BackboneBW*bwMult, cfg.BackboneLat*latMult)
		ups := make([]*platform.Link, sc.Nodes)
		for i := range ups {
			ups[i] = platform.NewLink(fmt.Sprintf("up%04d", i), cfg.LinkBW*bwMult*nodeMult(), cfg.LinkLat*latMult)
		}
		platform.BackboneTopology(p, hosts, bb, ups)
	case Tree4:
		if cfg.LinkBW <= 0 {
			return 0, fmt.Errorf("mpisim: tree requires positive link bandwidth")
		}
		platform.TreeTopology(p, hosts, platform.TreeSpec{
			Arity:         4,
			LeafBandwidth: cfg.LinkBW * bwMult,
			Latency:       cfg.LinkLat * latMult,
		})
	case FatTree:
		if cfg.LinkBW <= 0 {
			return 0, fmt.Errorf("mpisim: fat tree requires positive link bandwidth")
		}
		platform.FatTreeTopology(p, hosts, platform.FatTreeSpec{
			GroupSize:              18,
			NodeBandwidth:          cfg.LinkBW * bwMult,
			Latency:                cfg.LinkLat * latMult,
			UplinkOversubscription: 1,
		})
	default:
		return 0, fmt.Errorf("mpisim: unknown network option %d", v.Network)
	}

	ps := platform.NewSim(p)
	fc := mpi.FabricConfig{
		Nodes:        sc.Nodes,
		RanksPerNode: cfg.RanksPerNode,
		NICBW:        cfg.NICBW * bwMult * nodeMult(),
		XBusBW:       cfg.XBusBW * bwMult,
		PCIeBW:       cfg.PCIeBW * bwMult,
		HostLatency:  cfg.HostLatency * latMult,
		Protocol:     cfg.Protocol,
	}
	if v.Node == ComplexNode {
		fc.NodeModel = mpi.ComplexNode
	}
	fab, err := mpi.NewFabric(ps, hosts, fc)
	if err != nil {
		return 0, err
	}
	return mpi.Run(fab, mpi.RunSpec{
		Benchmark: sc.Benchmark,
		MsgBytes:  sc.MsgBytes,
		Rounds:    sc.Rounds,
		Seed:      sc.Seed,
	})
}

// MsgSizes returns the paper's message-size sweep: 2^x bytes for
// x ∈ {10, …, 22}.
func MsgSizes() []float64 {
	var out []float64
	for x := 10; x <= 22; x++ {
		out = append(out, float64(int64(1)<<uint(x)))
	}
	return out
}
