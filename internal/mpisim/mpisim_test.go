package mpisim

import (
	"math"
	"testing"

	"simcal/internal/core"
	"simcal/internal/mpi"
	"simcal/internal/stats"
)

// summitLike returns plausible parameter values for tests.
func summitLike() Config {
	return Config{
		BackboneBW:  100e9,
		BackboneLat: 2e-6,
		LinkBW:      12.5e9,
		LinkLat:     1e-6,
		NICBW:       12.5e9,
		XBusBW:      64e9,
		PCIeBW:      16e9,
		Protocol: mpi.Protocol{
			Factors:      [3]float64{0.3, 0.7, 0.95},
			ChangePoints: KnownChangePoints,
		},
		HostLatency: 1e-6,
	}
}

func TestAllVersionsCount(t *testing.T) {
	vs := AllVersions()
	if len(vs) != 16 {
		t.Fatalf("got %d versions, want 16", len(vs))
	}
	names := map[string]bool{}
	for _, v := range vs {
		if names[v.Name()] {
			t.Fatalf("duplicate name %s", v.Name())
		}
		names[v.Name()] = true
	}
}

func TestSpaceDimensions(t *testing.T) {
	if got := len(LowestDetail.Space()); got != 6 {
		t.Errorf("lowest detail dims = %d, want 6", got)
	}
	if got := len(HighestDetail.Space()); got != 11 {
		t.Errorf("highest detail dims = %d, want 11", got)
	}
	for _, v := range AllVersions() {
		if err := v.Space().Validate(); err != nil {
			t.Errorf("%s: %v", v.Name(), err)
		}
	}
}

func TestAllVersionsSimulate(t *testing.T) {
	sc := Scenario{Benchmark: mpi.PingPong, Nodes: 4, MsgBytes: 1 << 16, Rounds: 2}
	for _, v := range AllVersions() {
		rate, err := Simulate(v, summitLike(), sc)
		if err != nil {
			t.Fatalf("%s: %v", v.Name(), err)
		}
		if rate <= 0 || math.IsNaN(rate) || math.IsInf(rate, 0) {
			t.Errorf("%s: bad rate %v", v.Name(), rate)
		}
	}
}

func TestDecodeConfigRoundTrip(t *testing.T) {
	for _, v := range AllVersions() {
		sp := v.Space()
		u := make([]float64, sp.Dim())
		for i := range u {
			u[i] = 0.5
		}
		cfg := v.DecodeConfig(sp.Decode(u))
		if err := cfg.Protocol.Validate(); err != nil {
			t.Errorf("%s: decoded invalid protocol: %v", v.Name(), err)
		}
		if v.Protocol == FixedPoints && cfg.Protocol.ChangePoints != KnownChangePoints {
			t.Errorf("%s: fixed points not applied", v.Name())
		}
	}
}

func TestFreePointsDecodeOrdersChangePoints(t *testing.T) {
	v := Version{Network: Backbone, Node: SimpleNode, Protocol: FreePoints}
	pt := core.Point{
		ParamBackboneBW: 1e9, ParamBackboneLat: 0,
		ParamNICBW:   1e9,
		ParamFactor1: 0.5, ParamFactor2: 0.5, ParamFactor3: 0.5,
		ParamChange1: 1 << 20, ParamChange2: 1 << 12, // reversed
	}
	cfg := v.DecodeConfig(pt)
	if cfg.Protocol.ChangePoints[0] > cfg.Protocol.ChangePoints[1] {
		t.Error("change points not reordered")
	}
}

func TestRateIncreasesWithMessageSize(t *testing.T) {
	v := Version{Network: FatTree, Node: ComplexNode, Protocol: FixedPoints}
	cfg := summitLike()
	var prev float64
	for i, m := range MsgSizes() {
		rate, err := Simulate(v, cfg, Scenario{Benchmark: mpi.PingPong, Nodes: 4, MsgBytes: m, Rounds: 2})
		if err != nil {
			t.Fatal(err)
		}
		if i > 0 && rate < prev*0.5 {
			t.Errorf("rate dropped sharply at %v bytes: %v -> %v", m, prev, rate)
		}
		prev = rate
	}
}

func TestProtocolFactorsVisibleInRates(t *testing.T) {
	v := LowestDetail
	lo := summitLike()
	lo.Protocol.Factors = [3]float64{0.1, 0.1, 0.1}
	hi := summitLike()
	hi.Protocol.Factors = [3]float64{1, 1, 1}
	sc := Scenario{Benchmark: mpi.PingPong, Nodes: 2, MsgBytes: 1 << 22, Rounds: 2}
	rLo, err := Simulate(v, lo, sc)
	if err != nil {
		t.Fatal(err)
	}
	rHi, err := Simulate(v, hi, sc)
	if err != nil {
		t.Fatal(err)
	}
	if rLo >= rHi {
		t.Errorf("factor 0.1 rate (%v) not below factor 1 rate (%v)", rLo, rHi)
	}
}

func TestBackboneContentionVsFatTree(t *testing.T) {
	// A narrow backbone shared by all nodes must beat fewer aggregate
	// bytes/s than a non-blocking fat tree with the same per-node links.
	bb := summitLike()
	bb.BackboneBW = 12.5e9 // same as one node link
	sc := Scenario{Benchmark: mpi.Stencil, Nodes: 8, MsgBytes: 1 << 20, Rounds: 2}
	rBB, err := Simulate(Version{Backbone, SimpleNode, FixedPoints}, bb, sc)
	if err != nil {
		t.Fatal(err)
	}
	rFT, err := Simulate(Version{FatTree, SimpleNode, FixedPoints}, summitLike(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if rBB >= rFT {
		t.Errorf("shared backbone (%v) should be slower than fat tree (%v)", rBB, rFT)
	}
}

func TestDeterministicWithoutNoise(t *testing.T) {
	v := HighestDetail
	sc := Scenario{Benchmark: mpi.BiRandom, Nodes: 4, MsgBytes: 1 << 14, Rounds: 2, Seed: 5}
	a, err := Simulate(v, summitLike(), sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(v, summitLike(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("nondeterministic: %v vs %v", a, b)
	}
}

func TestNoiseProducesVariance(t *testing.T) {
	v := Version{FatTree, ComplexNode, FixedPoints}
	sc := Scenario{Benchmark: mpi.PingPong, Nodes: 4, MsgBytes: 1 << 18, Rounds: 2}
	var rates []float64
	for seed := int64(0); seed < 10; seed++ {
		cfg := summitLike()
		cfg.Noise = &NoiseModel{Seed: seed, BandwidthSpread: 0.05, LatencySpread: 0.05, NodeSpread: 0.02}
		r, err := Simulate(v, cfg, sc)
		if err != nil {
			t.Fatal(err)
		}
		rates = append(rates, r)
	}
	if stats.StdDev(rates) == 0 {
		t.Error("noise produced no variance")
	}
	noiseless, err := Simulate(v, summitLike(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(stats.Mean(rates)-noiseless) > 0.2*noiseless {
		t.Errorf("noisy mean %v far from noiseless %v", stats.Mean(rates), noiseless)
	}
}

func TestSimulateRejectsBadInputs(t *testing.T) {
	if _, err := Simulate(LowestDetail, summitLike(), Scenario{Benchmark: mpi.PingPong, Nodes: 1, MsgBytes: 1024}); err == nil {
		t.Error("single node accepted")
	}
	bad := summitLike()
	bad.BackboneBW = 0
	if _, err := Simulate(LowestDetail, bad, Scenario{Benchmark: mpi.PingPong, Nodes: 2, MsgBytes: 1024}); err == nil {
		t.Error("zero backbone bandwidth accepted")
	}
	bad = summitLike()
	bad.LinkBW = 0
	if _, err := Simulate(Version{Tree4, SimpleNode, FixedPoints}, bad, Scenario{Benchmark: mpi.PingPong, Nodes: 2, MsgBytes: 1024}); err == nil {
		t.Error("zero tree link bandwidth accepted")
	}
}

func TestMsgSizes(t *testing.T) {
	sizes := MsgSizes()
	if len(sizes) != 13 {
		t.Fatalf("got %d sizes, want 13", len(sizes))
	}
	if sizes[0] != 1024 || sizes[12] != 4194304 {
		t.Errorf("size endpoints wrong: %v ... %v", sizes[0], sizes[12])
	}
}

func TestScale128Nodes(t *testing.T) {
	// Smoke test at the paper's smallest scale: 128 nodes × 6 ranks.
	if testing.Short() {
		t.Skip("128-node simulation in -short mode")
	}
	v := Version{FatTree, SimpleNode, FixedPoints}
	rate, err := Simulate(v, summitLike(), Scenario{Benchmark: mpi.PingPong, Nodes: 128, MsgBytes: 1 << 16, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Errorf("rate = %v", rate)
	}
}

func TestScale512NodesStencilDeterministic(t *testing.T) {
	// The ROADMAP's Summit-scale target for case study #2: a 512-node
	// (3072-rank) dense stencil must complete and be bitwise repeatable —
	// the incremental flow solver re-solves only dirty components, and any
	// order dependence it introduced would show up here as last-ULP drift.
	if testing.Short() {
		t.Skip("512-node simulation in -short mode")
	}
	v := Version{FatTree, ComplexNode, FixedPoints}
	sc := Scenario{Benchmark: mpi.Stencil, Nodes: 512, MsgBytes: 1 << 16, Rounds: 2}
	r1, err := Simulate(v, summitLike(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if r1 <= 0 || math.IsInf(r1, 0) || math.IsNaN(r1) {
		t.Fatalf("rate = %v", r1)
	}
	r2, err := Simulate(v, summitLike(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(r1) != math.Float64bits(r2) {
		t.Fatalf("512-node stencil not bitwise repeatable: %v vs %v", r1, r2)
	}
}
