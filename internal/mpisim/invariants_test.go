package mpisim

import (
	"math"
	"testing"
	"testing/quick"

	"simcal/internal/mpi"
	"simcal/internal/stats"
)

func randomCfg(v Version, rng *stats.RNG) Config {
	sp := v.Space()
	return v.DecodeConfig(sp.Decode(sp.Sample(rng)))
}

// TestRateMonotoneInBandwidth: scaling every bandwidth up by 4× cannot
// decrease the transfer rate.
func TestRateMonotoneInBandwidth(t *testing.T) {
	f := func(seed int64, vIdx uint8) bool {
		rng := stats.NewRNG(seed)
		versions := AllVersions()
		v := versions[int(vIdx)%len(versions)]
		cfg := randomCfg(v, rng)
		sc := Scenario{Benchmark: mpi.PingPong, Nodes: 4, MsgBytes: 1 << 18, Rounds: 2}
		slow, err := Simulate(v, cfg, sc)
		if err != nil {
			return false
		}
		cfg2 := cfg
		cfg2.BackboneBW *= 4
		cfg2.LinkBW *= 4
		cfg2.NICBW *= 4
		cfg2.XBusBW *= 4
		cfg2.PCIeBW *= 4
		fast, err := Simulate(v, cfg2, sc)
		if err != nil {
			return false
		}
		return fast >= slow*(1-1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRateBoundedByProtocolAndBottleneck: the aggregate PingPong rate of
// a single pair on an otherwise idle backbone cannot exceed
// factor × backbone bandwidth.
func TestRateBoundedByProtocolAndBottleneck(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		v := LowestDetail
		cfg := randomCfg(v, rng)
		cfg.RanksPerNode = 1
		sc := Scenario{Benchmark: mpi.PingPong, Nodes: 2, MsgBytes: 1 << 22, Rounds: 2}
		rate, err := Simulate(v, cfg, sc)
		if err != nil {
			return false
		}
		factor := cfg.Protocol.Factor(sc.MsgBytes)
		bound := factor * math.Min(cfg.BackboneBW, cfg.NICBW)
		return rate <= bound*(1+1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestRatePositiveFiniteEverywhere: every version × random configuration
// must yield a positive finite rate for all benchmarks.
func TestRatePositiveFiniteEverywhere(t *testing.T) {
	rng := stats.NewRNG(3)
	for _, v := range AllVersions() {
		cfg := randomCfg(v, rng)
		for _, b := range mpi.AllBenchmarks {
			rate, err := Simulate(v, cfg, Scenario{Benchmark: b, Nodes: 4, MsgBytes: 1 << 14, Rounds: 2, Seed: 1})
			if err != nil {
				t.Fatalf("%s/%s: %v", v.Name(), b, err)
			}
			if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
				t.Fatalf("%s/%s: rate %v", v.Name(), b, rate)
			}
		}
	}
}

// TestHigherLatencyNeverSpeedsUp: increasing latency cannot increase the
// rate of a latency-sensitive small-message benchmark.
func TestHigherLatencyNeverSpeedsUp(t *testing.T) {
	f := func(seed int64) bool {
		rng := stats.NewRNG(seed)
		v := Version{Network: BackboneLinks, Node: SimpleNode, Protocol: FixedPoints}
		cfg := randomCfg(v, rng)
		sc := Scenario{Benchmark: mpi.PingPong, Nodes: 2, MsgBytes: 1 << 10, Rounds: 2}
		base, err := Simulate(v, cfg, sc)
		if err != nil {
			return false
		}
		cfg2 := cfg
		cfg2.LinkLat += 0.001
		cfg2.BackboneLat += 0.001
		slower, err := Simulate(v, cfg2, sc)
		if err != nil {
			return false
		}
		return slower <= base*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestMoreRanksMoveMoreBytes: with ample bandwidth, doubling the node
// count roughly doubles the aggregate PingPong rate (each pair is
// independent on a fat tree).
func TestMoreRanksMoveMoreBytes(t *testing.T) {
	cfg := summitLike()
	v := Version{Network: FatTree, Node: SimpleNode, Protocol: FixedPoints}
	r4, err := Simulate(v, cfg, Scenario{Benchmark: mpi.PingPong, Nodes: 4, MsgBytes: 1 << 20, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	r8, err := Simulate(v, cfg, Scenario{Benchmark: mpi.PingPong, Nodes: 8, MsgBytes: 1 << 20, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if r8 < r4*1.5 {
		t.Errorf("8-node rate %v not ~2x the 4-node rate %v on a non-blocking fabric", r8, r4)
	}
}
