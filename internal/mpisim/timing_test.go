package mpisim

import (
	"testing"

	"simcal/internal/mpi"
)

// benchSim measures one full benchmark execution at a given scale.
func benchSim(b *testing.B, bench mpi.Benchmark, nodes int) {
	cfg := summitLike()
	for i := 0; i < b.N; i++ {
		if _, err := Simulate(Version{FatTree, ComplexNode, FixedPoints}, cfg, Scenario{Benchmark: bench, Nodes: nodes, MsgBytes: 1 << 16, Rounds: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPingPong16(b *testing.B)  { benchSim(b, mpi.PingPong, 16) }
func BenchmarkPingPong128(b *testing.B) { benchSim(b, mpi.PingPong, 128) }
func BenchmarkStencil16(b *testing.B)   { benchSim(b, mpi.Stencil, 16) }
func BenchmarkStencil128(b *testing.B)  { benchSim(b, mpi.Stencil, 128) }

func BenchmarkBiRandom128(b *testing.B) { benchSim(b, mpi.BiRandom, 128) }
func BenchmarkBiRandom32(b *testing.B)  { benchSim(b, mpi.BiRandom, 32) }
func BenchmarkStencil512(b *testing.B)  { benchSim(b, mpi.Stencil, 512) }
