package groundtruth

import (
	"math"
	"testing"

	"simcal/internal/core"
	"simcal/internal/mpi"
	"simcal/internal/mpisim"
	"simcal/internal/stats"
	"simcal/internal/wfgen"
	"simcal/internal/wfsim"
)

// smallWFOpts keeps generation fast for tests.
func smallWFOpts() WFOptions {
	return WFOptions{
		Apps:    []wfgen.App{wfgen.Epigenomics},
		SizeIdx: []int{0},
		WorkIdx: []int{1},
		FootIdx: []int{1},
		Workers: []int{2},
		Reps:    3,
		Seed:    1,
	}
}

func TestGenerateWorkflowDataShape(t *testing.T) {
	ds, err := GenerateWorkflowData(smallWFOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Groups) != 1 {
		t.Fatalf("groups = %d, want 1", len(ds.Groups))
	}
	g := ds.Groups[0]
	if len(g.Runs) != 3 {
		t.Errorf("reps = %d, want 3", len(g.Runs))
	}
	if g.MeanMakespan <= 0 {
		t.Error("non-positive mean makespan")
	}
	if len(g.MeanTaskTimes) != g.Spec.Tasks {
		t.Errorf("task means = %d, want %d", len(g.MeanTaskTimes), g.Spec.Tasks)
	}
	if g.Cost() <= 0 || ds.Cost() != g.Cost() {
		t.Error("cost accounting wrong")
	}
}

func TestWorkflowDataHasVarianceAcrossReps(t *testing.T) {
	ds, err := GenerateWorkflowData(smallWFOpts())
	if err != nil {
		t.Fatal(err)
	}
	var ms []float64
	for _, r := range ds.Groups[0].Runs {
		ms = append(ms, r.Makespan)
	}
	if stats.StdDev(ms) == 0 {
		t.Error("repetitions identical — noise not applied")
	}
}

func TestWorkflowDataDeterministicGivenSeed(t *testing.T) {
	a, err := GenerateWorkflowData(smallWFOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateWorkflowData(smallWFOpts())
	if err != nil {
		t.Fatal(err)
	}
	if a.Groups[0].MeanMakespan != b.Groups[0].MeanMakespan {
		t.Error("generation not deterministic")
	}
}

func TestChainUsesOneWorkerOnly(t *testing.T) {
	o := smallWFOpts()
	o.Apps = []wfgen.App{wfgen.Chain}
	o.Workers = []int{1, 2, 4}
	o.FootIdx = []int{0}
	ds, err := GenerateWorkflowData(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range ds.Groups {
		if g.Workers != 1 {
			t.Errorf("chain executed on %d workers", g.Workers)
		}
	}
}

func TestWFTruthPointMatchesSpaces(t *testing.T) {
	for _, v := range wfsim.AllVersions() {
		pt := WorkflowTruthPoint(v)
		sp := v.Space()
		// Every space parameter must be present in the truth point.
		u := sp.Encode(pt)
		for i, s := range sp {
			// Truth must lie inside the search range (not clamped to an
			// endpoint), otherwise calibration can never recover it.
			if u[i] <= 0 || u[i] >= 1 {
				t.Errorf("%s: truth for %s at unit coordinate %v (outside open range)", v.Name(), s.Name, u[i])
			}
		}
	}
}

func TestSyntheticWorkflowDataIsNoiseFree(t *testing.T) {
	template, err := GenerateWorkflowData(smallWFOpts())
	if err != nil {
		t.Fatal(err)
	}
	v := wfsim.HighestDetail
	planted := WorkflowTruthPoint(v)
	syn, err := SyntheticWorkflowData(v, planted, template)
	if err != nil {
		t.Fatal(err)
	}
	if len(syn.Groups) != len(template.Groups) {
		t.Fatal("synthetic group count mismatch")
	}
	for _, g := range syn.Groups {
		if len(g.Runs) != 1 {
			t.Error("synthetic data should have one run per group")
		}
	}
	// Re-simulating at the planted point must reproduce it exactly.
	cfg := v.DecodeConfig(planted)
	wf := wfgen.Generate(syn.Groups[0].Spec)
	res, err := wfsim.Simulate(v, cfg, wfsim.Scenario{Workflow: wf, Workers: syn.Groups[0].Workers})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != syn.Groups[0].MeanMakespan {
		t.Error("synthetic ground truth not reproducible at the planted point")
	}
}

func TestDatasetFilter(t *testing.T) {
	o := smallWFOpts()
	o.Workers = []int{1, 2}
	ds, err := GenerateWorkflowData(o)
	if err != nil {
		t.Fatal(err)
	}
	f := ds.Filter(func(g *WFGroup) bool { return g.Workers == 2 })
	if len(f.Groups) != 1 || f.Groups[0].Workers != 2 {
		t.Error("Filter wrong")
	}
}

func smallMPIOpts() MPIOptions {
	return MPIOptions{
		Benchmarks: []mpi.Benchmark{mpi.PingPong, mpi.PingPing},
		Nodes:      []int{4},
		MsgSizes:   []float64{1 << 12, 1 << 20},
		Rounds:     2,
		Reps:       3,
		Seed:       2,
	}
}

func TestGenerateMPIDataShape(t *testing.T) {
	ds, err := GenerateMPIData(smallMPIOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(ds.Measurements) != 4 {
		t.Fatalf("measurements = %d, want 4", len(ds.Measurements))
	}
	for _, m := range ds.Measurements {
		if len(m.Rates) != 3 {
			t.Errorf("%s: %d samples, want 3", m.Key(), len(m.Rates))
		}
		if m.MeanRate() <= 0 {
			t.Errorf("%s: non-positive mean rate", m.Key())
		}
		if stats.StdDev(m.Rates) == 0 {
			t.Errorf("%s: no sample variance", m.Key())
		}
	}
}

func TestMPIDataDeterministicGivenSeed(t *testing.T) {
	a, err := GenerateMPIData(smallMPIOpts())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateMPIData(smallMPIOpts())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Measurements {
		if a.Measurements[i].MeanRate() != b.Measurements[i].MeanRate() {
			t.Fatal("MPI generation not deterministic")
		}
	}
}

func TestMPITruthPointMatchesSpaces(t *testing.T) {
	for _, v := range mpisim.AllVersions() {
		pt := MPITruthPoint(v)
		sp := v.Space()
		u := sp.Encode(pt)
		for i, s := range sp {
			if u[i] <= 0 || u[i] >= 1 {
				t.Errorf("%s: truth for %s at unit coordinate %v", v.Name(), s.Name, u[i])
			}
		}
	}
}

func TestSyntheticMPIData(t *testing.T) {
	template, err := GenerateMPIData(smallMPIOpts())
	if err != nil {
		t.Fatal(err)
	}
	v := mpisim.LowestDetail
	planted := MPITruthPoint(v)
	syn, err := SyntheticMPIData(v, planted, template, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(syn.Measurements) != len(template.Measurements) {
		t.Fatal("synthetic measurement count mismatch")
	}
	for _, m := range syn.Measurements {
		if len(m.Rates) != 1 {
			t.Error("synthetic MPI data should be single-sample")
		}
		if m.Rates[0] <= 0 || math.IsNaN(m.Rates[0]) {
			t.Error("bad synthetic rate")
		}
	}
}

func TestMPIDatasetFilter(t *testing.T) {
	ds, err := GenerateMPIData(smallMPIOpts())
	if err != nil {
		t.Fatal(err)
	}
	f := ds.Filter(func(m *MPIMeasurement) bool { return m.Benchmark == mpi.PingPong })
	if len(f.Measurements) != 2 {
		t.Errorf("filtered = %d, want 2", len(f.Measurements))
	}
}

func TestTruthPointsDecodeToValidConfigs(t *testing.T) {
	cfg := wfsim.HighestDetail.DecodeConfig(WorkflowTruthPoint(wfsim.HighestDetail))
	if cfg.CoreSpeed != WorkflowTruth.CoreSpeed || cfg.SubmitOvh != WorkflowTruth.SubmitOvh {
		t.Error("workflow truth point does not decode to the truth config")
	}
	mcfg := MPIReferenceVersion.DecodeConfig(MPITruthPoint(MPIReferenceVersion))
	if mcfg.LinkBW != MPITruth.LinkBW || mcfg.Protocol.Factors != MPITruth.Protocol.Factors {
		t.Error("MPI truth point does not decode to the truth config")
	}
	var _ core.Point = MPITruthPoint(MPIReferenceVersion)
}
