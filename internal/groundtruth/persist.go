package groundtruth

import (
	"encoding/json"
	"fmt"
	"io"

	"simcal/internal/mpi"
	"simcal/internal/wfgen"
)

// The on-disk dataset formats: self-describing JSON documents so that
// ground truth generated once (expensive at paper scale) can be reused
// across calibration sessions and shared between machines, like the
// paper's published execution logs.

type wfDoc struct {
	Kind   string       `json:"kind"` // "simcal-workflow-groundtruth"
	Groups []wfGroupDoc `json:"groups"`
}

type wfGroupDoc struct {
	App       wfgen.App  `json:"app"`
	Tasks     int        `json:"tasks"`
	WorkSec   float64    `json:"workSeconds"`
	Footprint float64    `json:"footprintBytes"`
	Workers   int        `json:"workers"`
	Runs      []wfRunDoc `json:"runs"`
}

type wfRunDoc struct {
	Makespan  float64            `json:"makespan"`
	TaskTimes map[string]float64 `json:"taskTimes"`
}

const wfDocKind = "simcal-workflow-groundtruth"

// WriteJSON serializes the workflow dataset.
func (d *WFDataset) WriteJSON(out io.Writer) error {
	doc := wfDoc{Kind: wfDocKind}
	for _, g := range d.Groups {
		gd := wfGroupDoc{
			App: g.Spec.App, Tasks: g.Spec.Tasks,
			WorkSec: g.Spec.WorkSeconds, Footprint: g.Spec.FootprintBytes,
			Workers: g.Workers,
		}
		for _, r := range g.Runs {
			gd.Runs = append(gd.Runs, wfRunDoc{Makespan: r.Makespan, TaskTimes: r.TaskTimes})
		}
		doc.Groups = append(doc.Groups, gd)
	}
	enc := json.NewEncoder(out)
	return enc.Encode(doc)
}

// ReadWFDataset parses a workflow dataset previously written with
// WriteJSON and recomputes the per-group aggregates.
func ReadWFDataset(in io.Reader) (*WFDataset, error) {
	var doc wfDoc
	if err := json.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("groundtruth: decoding workflow dataset: %w", err)
	}
	if doc.Kind != wfDocKind {
		return nil, fmt.Errorf("groundtruth: unexpected document kind %q", doc.Kind)
	}
	ds := &WFDataset{}
	for _, gd := range doc.Groups {
		if gd.Workers < 1 || gd.Tasks < 1 {
			return nil, fmt.Errorf("groundtruth: invalid group %v/%d", gd.App, gd.Tasks)
		}
		g := &WFGroup{
			Spec: wfgen.Spec{
				App: gd.App, Tasks: gd.Tasks,
				WorkSeconds: gd.WorkSec, FootprintBytes: gd.Footprint,
			},
			Workers: gd.Workers,
		}
		for rep, rd := range gd.Runs {
			if rd.Makespan <= 0 {
				return nil, fmt.Errorf("groundtruth: group %s has non-positive makespan", g.Key())
			}
			g.Runs = append(g.Runs, &WFExecution{
				Spec: g.Spec, Workers: g.Workers, Rep: rep,
				Makespan: rd.Makespan, TaskTimes: rd.TaskTimes,
			})
		}
		aggregateGroup(g)
		ds.Groups = append(ds.Groups, g)
	}
	return ds, nil
}

type mpiDoc struct {
	Kind         string       `json:"kind"` // "simcal-mpi-groundtruth"
	Measurements []mpiMeasDoc `json:"measurements"`
}

type mpiMeasDoc struct {
	Benchmark mpi.Benchmark `json:"benchmark"`
	Nodes     int           `json:"nodes"`
	MsgBytes  float64       `json:"msgBytes"`
	Rates     []float64     `json:"rates"`
}

const mpiDocKind = "simcal-mpi-groundtruth"

// WriteJSON serializes the MPI dataset.
func (d *MPIDataset) WriteJSON(out io.Writer) error {
	doc := mpiDoc{Kind: mpiDocKind}
	for _, m := range d.Measurements {
		doc.Measurements = append(doc.Measurements, mpiMeasDoc{
			Benchmark: m.Benchmark, Nodes: m.Nodes, MsgBytes: m.MsgBytes, Rates: m.Rates,
		})
	}
	return json.NewEncoder(out).Encode(doc)
}

// ReadMPIDataset parses an MPI dataset previously written with WriteJSON.
func ReadMPIDataset(in io.Reader) (*MPIDataset, error) {
	var doc mpiDoc
	if err := json.NewDecoder(in).Decode(&doc); err != nil {
		return nil, fmt.Errorf("groundtruth: decoding MPI dataset: %w", err)
	}
	if doc.Kind != mpiDocKind {
		return nil, fmt.Errorf("groundtruth: unexpected document kind %q", doc.Kind)
	}
	ds := &MPIDataset{}
	for _, md := range doc.Measurements {
		if md.Nodes < 2 || md.MsgBytes <= 0 || len(md.Rates) == 0 {
			return nil, fmt.Errorf("groundtruth: invalid measurement %s@%d", md.Benchmark, md.Nodes)
		}
		ds.Measurements = append(ds.Measurements, &MPIMeasurement{
			Benchmark: md.Benchmark, Nodes: md.Nodes, MsgBytes: md.MsgBytes, Rates: md.Rates,
		})
	}
	return ds, nil
}
