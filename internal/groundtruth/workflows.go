// Package groundtruth generates the ground-truth execution data both
// case studies calibrate against. The paper used real systems (Pegasus/
// HTCondor on Chameleon Cloud; IMB on Summit); this repository
// substitutes *reference simulators* configured at a strictly higher
// level of detail than any candidate simulator version, driven by hidden
// "true" parameters plus stochastic noise, and replayed several times
// per configuration. The methodology only requires ground-truth logs
// whose generating process is richer than the candidate simulators —
// exactly the real-world situation — and the hidden truth additionally
// lets the repository validate calibration error end to end.
//
// The package also produces the *synthetic* ground truth of Section 3's
// benchmarking technique: candidate simulators run at a planted
// calibration, noise-free, so the best calibration is known by design.
package groundtruth

import (
	"fmt"

	"simcal/internal/core"
	"simcal/internal/stats"
	"simcal/internal/wfgen"
	"simcal/internal/wfsim"
)

// WorkflowReferenceVersion is the level of detail of the reference
// workflow platform: star network, storage everywhere, HTCondor.
var WorkflowReferenceVersion = wfsim.Version{
	Network: wfsim.Star,
	Storage: wfsim.AllNodes,
	Compute: wfsim.HTCondor,
}

// WorkflowTruth holds the hidden true parameters of the reference
// workflow platform (Chameleon-like: 48-core Icelake workers, 10 Gb/s
// networking, NVMe-ish storage, ~1–2 s HTCondor overheads).
var WorkflowTruth = wfsim.Config{
	CoreSpeed: 1e9,   // ops/s — Table 1 work values are calibrated to this
	DiskBW:    250e6, // bytes/s
	DiskConc:  16,
	LinkBW:    1.25e9, // bytes/s (10 Gb/s)
	LinkLat:   1e-4,
	SubmitOvh: 1.5,
	PreOvh:    0.8,
	PostOvh:   0.5,
}

// WorkflowTruthPoint returns the true parameters as a calibration point
// in the given version's space (used to measure calibration error for
// versions that share the reference's parameters).
func WorkflowTruthPoint(v wfsim.Version) core.Point {
	p := core.Point{
		wfsim.ParamCoreSpeed: WorkflowTruth.CoreSpeed,
		wfsim.ParamDiskBW:    WorkflowTruth.DiskBW,
		wfsim.ParamDiskConc:  float64(WorkflowTruth.DiskConc),
		wfsim.ParamLinkBW:    WorkflowTruth.LinkBW,
		wfsim.ParamLinkLat:   WorkflowTruth.LinkLat,
	}
	if v.Network == wfsim.Series {
		p[wfsim.ParamSharedBW] = WorkflowTruth.LinkBW
		p[wfsim.ParamSharedLat] = WorkflowTruth.LinkLat
	}
	if v.Compute == wfsim.HTCondor {
		p[wfsim.ParamSubmitOvh] = WorkflowTruth.SubmitOvh
		p[wfsim.ParamPreOvh] = WorkflowTruth.PreOvh
		p[wfsim.ParamPostOvh] = WorkflowTruth.PostOvh
	}
	return p
}

// workflowNoise is the reference platform's run-to-run variability.
func workflowNoise(seed int64) *wfsim.NoiseModel {
	return &wfsim.NoiseModel{
		Seed:           seed,
		WorkSpread:     0.04,
		OverheadSpread: 0.15,
		MachineSpread:  0.02,
	}
}

// WFExecution is one ground-truth workflow execution record (one
// repetition of one configuration).
type WFExecution struct {
	Spec      wfgen.Spec
	Workers   int
	Rep       int
	Makespan  float64
	TaskTimes map[string]float64
}

// WFGroup aggregates the repetitions of one (spec, workers)
// configuration.
type WFGroup struct {
	Spec    wfgen.Spec
	Workers int
	Runs    []*WFExecution

	// MeanMakespan and MeanTaskTimes average over repetitions.
	MeanMakespan  float64
	MeanTaskTimes map[string]float64
}

// Key identifies the group.
func (g *WFGroup) Key() string {
	return fmt.Sprintf("%s@%dw", g.Spec.Name(), g.Workers)
}

// Cost is the paper's resource-cost metric for obtaining this group's
// ground truth: Σ over executions of workers × makespan (seconds).
func (g *WFGroup) Cost() float64 {
	c := 0.0
	for _, r := range g.Runs {
		c += float64(g.Workers) * r.Makespan
	}
	return c
}

// WFDataset is a collection of ground-truth workflow groups.
type WFDataset struct {
	Groups []*WFGroup
}

// Cost sums the resource cost over all groups.
func (d *WFDataset) Cost() float64 {
	c := 0.0
	for _, g := range d.Groups {
		c += g.Cost()
	}
	return c
}

// Filter returns the subset of groups satisfying keep.
func (d *WFDataset) Filter(keep func(*WFGroup) bool) *WFDataset {
	out := &WFDataset{}
	for _, g := range d.Groups {
		if keep(g) {
			out.Groups = append(out.Groups, g)
		}
	}
	return out
}

// WFOptions selects which slice of Table 1's grid to execute.
// Nil slices default to the full Table 1 grid for the chosen apps.
type WFOptions struct {
	Apps    []wfgen.App
	SizeIdx []int // indices into Table1[app].Sizes
	WorkIdx []int // indices into Table1[app].WorkSeconds
	FootIdx []int // indices into Table1[app].FootprintsMB
	Workers []int // default {1,2,4,6} (chain: {1} only)
	Reps    int   // default 5
	Seed    int64
}

// GenerateWorkflowData executes the selected configurations on the
// reference platform and returns the resulting dataset. Generation is
// deterministic given the options.
func GenerateWorkflowData(o WFOptions) (*WFDataset, error) {
	if len(o.Apps) == 0 {
		o.Apps = wfgen.AllApps
	}
	if len(o.Workers) == 0 {
		o.Workers = []int{1, 2, 4, 6}
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	ds := &WFDataset{}
	seedStream := stats.NewRNG(o.Seed)
	for _, app := range o.Apps {
		aspec, ok := wfgen.Table1[app]
		if !ok {
			return nil, fmt.Errorf("groundtruth: unknown app %q", app)
		}
		sizes := pick(aspec.Sizes, o.SizeIdx)
		works := pick(aspec.WorkSeconds, o.WorkIdx)
		foots := pick(aspec.FootprintsMB, o.FootIdx)
		workers := o.Workers
		if app == wfgen.Chain {
			workers = []int{1} // the chain benchmark only uses one worker
		}
		for _, n := range sizes {
			for _, ws := range works {
				for _, fp := range foots {
					spec := wfgen.Spec{App: app, Tasks: n, WorkSeconds: ws, FootprintBytes: fp * wfgen.MB}
					wf := wfgen.Generate(spec)
					for _, nw := range workers {
						g := &WFGroup{Spec: spec, Workers: nw}
						for rep := 0; rep < o.Reps; rep++ {
							cfg := WorkflowTruth
							cfg.Noise = workflowNoise(seedStream.Int63())
							res, err := wfsim.Simulate(WorkflowReferenceVersion, cfg, wfsim.Scenario{Workflow: wf, Workers: nw})
							if err != nil {
								return nil, fmt.Errorf("groundtruth: %s on %d workers: %w", spec.Name(), nw, err)
							}
							g.Runs = append(g.Runs, &WFExecution{
								Spec: spec, Workers: nw, Rep: rep,
								Makespan: res.Makespan, TaskTimes: res.TaskTimes,
							})
						}
						aggregateGroup(g)
						ds.Groups = append(ds.Groups, g)
					}
				}
			}
		}
	}
	return ds, nil
}

// SyntheticWorkflowData produces Section 3's synthetic ground truth: it
// runs the given candidate simulator version itself, noise-free, at the
// planted calibration, over the scenarios of the template dataset. The
// best calibration for this data is the planted point by design.
func SyntheticWorkflowData(v wfsim.Version, planted core.Point, template *WFDataset) (*WFDataset, error) {
	cfg := v.DecodeConfig(planted)
	out := &WFDataset{}
	for _, g := range template.Groups {
		wf := wfgen.Generate(g.Spec)
		res, err := wfsim.Simulate(v, cfg, wfsim.Scenario{Workflow: wf, Workers: g.Workers})
		if err != nil {
			return nil, fmt.Errorf("groundtruth: synthetic %s: %w", g.Key(), err)
		}
		ng := &WFGroup{Spec: g.Spec, Workers: g.Workers}
		ng.Runs = []*WFExecution{{
			Spec: g.Spec, Workers: g.Workers,
			Makespan: res.Makespan, TaskTimes: res.TaskTimes,
		}}
		aggregateGroup(ng)
		out.Groups = append(out.Groups, ng)
	}
	return out, nil
}

// aggregateGroup fills the group's means from its runs.
func aggregateGroup(g *WFGroup) {
	if len(g.Runs) == 0 {
		return
	}
	var ms []float64
	sums := make(map[string]float64)
	for _, r := range g.Runs {
		ms = append(ms, r.Makespan)
		for k, v := range r.TaskTimes {
			sums[k] += v
		}
	}
	g.MeanMakespan = stats.Mean(ms)
	g.MeanTaskTimes = make(map[string]float64, len(sums))
	for k, s := range sums {
		g.MeanTaskTimes[k] = s / float64(len(g.Runs))
	}
}

// pick selects elements of xs at the given indices, or all of xs when
// idx is nil. Out-of-range indices panic.
func pick[T any](xs []T, idx []int) []T {
	if idx == nil {
		return xs
	}
	out := make([]T, 0, len(idx))
	for _, i := range idx {
		out = append(out, xs[i])
	}
	return out
}
