package groundtruth

import (
	"bytes"
	"strings"
	"testing"
)

func TestWFDatasetJSONRoundTrip(t *testing.T) {
	ds, err := GenerateWorkflowData(smallWFOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadWFDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Groups) != len(ds.Groups) {
		t.Fatalf("groups = %d, want %d", len(back.Groups), len(ds.Groups))
	}
	for i, g := range ds.Groups {
		b := back.Groups[i]
		if b.Key() != g.Key() {
			t.Errorf("group %d key %q != %q", i, b.Key(), g.Key())
		}
		if b.MeanMakespan != g.MeanMakespan {
			t.Errorf("group %d mean makespan %v != %v", i, b.MeanMakespan, g.MeanMakespan)
		}
		if len(b.MeanTaskTimes) != len(g.MeanTaskTimes) {
			t.Errorf("group %d task means lost", i)
		}
		if b.Cost() != g.Cost() {
			t.Errorf("group %d cost %v != %v", i, b.Cost(), g.Cost())
		}
	}
}

func TestMPIDatasetJSONRoundTrip(t *testing.T) {
	ds, err := GenerateMPIData(smallMPIOpts())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadMPIDataset(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Measurements) != len(ds.Measurements) {
		t.Fatalf("measurements = %d, want %d", len(back.Measurements), len(ds.Measurements))
	}
	for i, m := range ds.Measurements {
		b := back.Measurements[i]
		if b.Key() != m.Key() || b.MeanRate() != m.MeanRate() {
			t.Errorf("measurement %d mismatch after round trip", i)
		}
	}
}

func TestReadWFDatasetRejectsBadDocs(t *testing.T) {
	cases := []string{
		"{not json",
		`{"kind":"wrong","groups":[]}`,
		`{"kind":"simcal-workflow-groundtruth","groups":[{"app":"chain","tasks":0,"workers":1,"runs":[]}]}`,
		`{"kind":"simcal-workflow-groundtruth","groups":[{"app":"chain","tasks":5,"workers":1,"runs":[{"makespan":-1}]}]}`,
	}
	for i, c := range cases {
		if _, err := ReadWFDataset(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestReadMPIDatasetRejectsBadDocs(t *testing.T) {
	cases := []string{
		"{not json",
		`{"kind":"wrong","measurements":[]}`,
		`{"kind":"simcal-mpi-groundtruth","measurements":[{"benchmark":"PingPong","nodes":1,"msgBytes":1024,"rates":[1]}]}`,
		`{"kind":"simcal-mpi-groundtruth","measurements":[{"benchmark":"PingPong","nodes":4,"msgBytes":1024,"rates":[]}]}`,
	}
	for i, c := range cases {
		if _, err := ReadMPIDataset(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
