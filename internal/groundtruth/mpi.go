package groundtruth

import (
	"fmt"
	"math"

	"simcal/internal/core"
	"simcal/internal/mpi"
	"simcal/internal/mpisim"
	"simcal/internal/stats"
)

// MPIReferenceVersion is the reference MPI platform's level of detail: a
// Summit-like fat tree, complex two-socket nodes, and the adaptive
// protocol with its true change points.
var MPIReferenceVersion = mpisim.Version{
	Network:  mpisim.FatTree,
	Node:     mpisim.ComplexNode,
	Protocol: mpisim.FixedPoints,
}

// MPITruth holds the hidden true parameters of the reference MPI
// platform (Summit-like: dual-rail EDR NICs, POWER9 X-Bus, PCIe gen4).
var MPITruth = mpisim.Config{
	LinkBW:  12.5e9, // bytes/s per node link
	LinkLat: 1e-6,
	XBusBW:  64e9,
	PCIeBW:  16e9,
	Protocol: mpi.Protocol{
		Factors:      [3]float64{0.3, 0.7, 0.95},
		ChangePoints: mpisim.KnownChangePoints,
	},
	HostLatency: 2e-6,
}

// MPITruthPoint returns the true parameters as a calibration point in
// the given version's space (for versions sharing the reference's
// parameters).
func MPITruthPoint(v mpisim.Version) core.Point {
	p := core.Point{
		mpisim.ParamFactor1: MPITruth.Protocol.Factors[0],
		mpisim.ParamFactor2: MPITruth.Protocol.Factors[1],
		mpisim.ParamFactor3: MPITruth.Protocol.Factors[2],
	}
	switch v.Network {
	case mpisim.Backbone:
		p[mpisim.ParamBackboneBW] = MPITruth.LinkBW * 8 // an aggregate macro-link guess
		p[mpisim.ParamBackboneLat] = MPITruth.LinkLat
	case mpisim.BackboneLinks:
		p[mpisim.ParamBackboneBW] = MPITruth.LinkBW * 8
		p[mpisim.ParamBackboneLat] = MPITruth.LinkLat
		p[mpisim.ParamLinkBW] = MPITruth.LinkBW
		p[mpisim.ParamLinkLat] = MPITruth.LinkLat
	case mpisim.Tree4, mpisim.FatTree:
		p[mpisim.ParamLinkBW] = MPITruth.LinkBW
		p[mpisim.ParamLinkLat] = MPITruth.LinkLat
	}
	switch v.Node {
	case mpisim.SimpleNode:
		p[mpisim.ParamNICBW] = MPITruth.PCIeBW
	case mpisim.ComplexNode:
		p[mpisim.ParamXBusBW] = MPITruth.XBusBW
		p[mpisim.ParamPCIeBW] = MPITruth.PCIeBW
	}
	if v.Protocol == mpisim.FreePoints {
		p[mpisim.ParamChange1] = MPITruth.Protocol.ChangePoints[0]
		p[mpisim.ParamChange2] = MPITruth.Protocol.ChangePoints[1]
	}
	return p
}

// mpiNoise is the reference MPI platform's run-to-run variability.
func mpiNoise(seed int64) *mpisim.NoiseModel {
	return &mpisim.NoiseModel{
		Seed:            seed,
		BandwidthSpread: 0.04,
		LatencySpread:   0.10,
		NodeSpread:      0.02,
	}
}

// scaleCongestionExp models the scale-dependent effects a real
// production fabric exhibits but none of the candidate simulator
// versions can express (adaptive-routing congestion, background traffic,
// OS interference — all growing with allocation size): effective
// per-node bandwidth shrinks as nodes^-α. This is what makes calibrations
// computed at one scale fail to generalize to larger scales — the
// paper's Section 6.5 negative result, which its authors attribute to
// incomplete information about how the ground truth was obtained.
const scaleCongestionExp = 0.3

// scaleCongestion returns the bandwidth multiplier at a node count.
func scaleCongestion(nodes int) float64 {
	return math.Pow(float64(nodes)/8.0, -scaleCongestionExp)
}

// MPIMeasurement is the ground truth for one (benchmark, nodes, message
// size) configuration: repeated data-transfer-rate samples.
type MPIMeasurement struct {
	Benchmark mpi.Benchmark
	Nodes     int
	MsgBytes  float64
	// Rates holds one aggregate transfer rate (bytes/s) per repetition.
	Rates []float64
}

// Key identifies the measurement.
func (m *MPIMeasurement) Key() string {
	return fmt.Sprintf("%s@%dn/%gB", m.Benchmark, m.Nodes, m.MsgBytes)
}

// MeanRate averages the samples.
func (m *MPIMeasurement) MeanRate() float64 { return stats.Mean(m.Rates) }

// MPIDataset is a collection of MPI ground-truth measurements.
type MPIDataset struct {
	Measurements []*MPIMeasurement
}

// Filter returns the subset of measurements satisfying keep.
func (d *MPIDataset) Filter(keep func(*MPIMeasurement) bool) *MPIDataset {
	out := &MPIDataset{}
	for _, m := range d.Measurements {
		if keep(m) {
			out.Measurements = append(out.Measurements, m)
		}
	}
	return out
}

// MPIOptions selects the ground-truth grid to execute.
type MPIOptions struct {
	Benchmarks []mpi.Benchmark // default: all four
	Nodes      []int           // default {128, 256, 512}
	MsgSizes   []float64       // default 2^10 … 2^22
	Rounds     int             // default 4
	Reps       int             // default 5
	Seed       int64
}

// GenerateMPIData measures the selected configurations on the reference
// platform. Deterministic given the options.
func GenerateMPIData(o MPIOptions) (*MPIDataset, error) {
	if len(o.Benchmarks) == 0 {
		o.Benchmarks = mpi.AllBenchmarks
	}
	if len(o.Nodes) == 0 {
		o.Nodes = []int{128, 256, 512}
	}
	if len(o.MsgSizes) == 0 {
		o.MsgSizes = mpisim.MsgSizes()
	}
	if o.Reps <= 0 {
		o.Reps = 5
	}
	ds := &MPIDataset{}
	seedStream := stats.NewRNG(o.Seed)
	for _, b := range o.Benchmarks {
		for _, n := range o.Nodes {
			for _, m := range o.MsgSizes {
				meas := &MPIMeasurement{Benchmark: b, Nodes: n, MsgBytes: m}
				for rep := 0; rep < o.Reps; rep++ {
					cfg := MPITruth
					cong := scaleCongestion(n)
					cfg.LinkBW *= cong
					cfg.PCIeBW *= cong
					cfg.Noise = mpiNoise(seedStream.Int63())
					rate, err := mpisim.Simulate(MPIReferenceVersion, cfg, mpisim.Scenario{
						Benchmark: b, Nodes: n, MsgBytes: m, Rounds: o.Rounds, Seed: int64(rep),
					})
					if err != nil {
						return nil, fmt.Errorf("groundtruth: %s %dn %gB: %w", b, n, m, err)
					}
					meas.Rates = append(meas.Rates, rate)
				}
				ds.Measurements = append(ds.Measurements, meas)
			}
		}
	}
	return ds, nil
}

// SyntheticMPIData runs the candidate simulator version itself at the
// planted calibration, noise-free, to produce synthetic ground truth
// with a single sample per configuration (SMPI-style simulations are
// deterministic, as the paper notes).
func SyntheticMPIData(v mpisim.Version, planted core.Point, template *MPIDataset, rounds int) (*MPIDataset, error) {
	cfg := v.DecodeConfig(planted)
	out := &MPIDataset{}
	for _, m := range template.Measurements {
		rate, err := mpisim.Simulate(v, cfg, mpisim.Scenario{
			Benchmark: m.Benchmark, Nodes: m.Nodes, MsgBytes: m.MsgBytes, Rounds: rounds, Seed: 0,
		})
		if err != nil {
			return nil, fmt.Errorf("groundtruth: synthetic %s: %w", m.Key(), err)
		}
		out.Measurements = append(out.Measurements, &MPIMeasurement{
			Benchmark: m.Benchmark, Nodes: m.Nodes, MsgBytes: m.MsgBytes,
			Rates: []float64{rate},
		})
	}
	return out, nil
}
