package resilience

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestClassify(t *testing.T) {
	base := errors.New("sim broke")
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"plain error", base, Deterministic},
		{"wrapped plain error", fmt.Errorf("outer: %w", base), Deterministic},
		{"panic", NewPanicError("boom", nil), Deterministic},
		{"wrapped panic", fmt.Errorf("eval: %w", NewPanicError("boom", nil)), Deterministic},
		{"timeout", &TimeoutError{Timeout: time.Second}, Transient},
		{"marked transient", MarkTransient(base), Transient},
		{"wrapped transient", fmt.Errorf("eval: %w", MarkTransient(base)), Transient},
		{"breaker open", ErrBreakerOpen, Transient},
		{"wrapped breaker open", fmt.Errorf("eval: %w", ErrBreakerOpen), Transient},
		{"canceled", context.Canceled, Aborted},
		{"deadline", context.DeadlineExceeded, Aborted},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("%s: Classify = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestClassStrings(t *testing.T) {
	for c, want := range map[Class]string{
		Deterministic: "deterministic",
		Transient:     "transient",
		Aborted:       "aborted",
		Class(9):      "Class(9)",
	} {
		if got := c.String(); got != want {
			t.Errorf("Class(%d).String() = %q, want %q", int(c), got, want)
		}
	}
}

func TestMarkTransientNil(t *testing.T) {
	if MarkTransient(nil) != nil {
		t.Error("MarkTransient(nil) should stay nil")
	}
}

func TestSafelyConvertsPanics(t *testing.T) {
	err := Safely(func() error { panic("kaboom") })
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if pe.Value != "kaboom" {
		t.Errorf("panic value = %v, want kaboom", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "resilience_test") {
		t.Error("panic stack does not mention the panicking test frame")
	}
	if !strings.Contains(pe.Error(), "kaboom") {
		t.Errorf("Error() = %q, want the panic value included", pe.Error())
	}
}

func TestSafelyPassesThrough(t *testing.T) {
	if err := Safely(func() error { return nil }); err != nil {
		t.Errorf("err = %v, want nil", err)
	}
	want := errors.New("no")
	if err := Safely(func() error { return want }); !errors.Is(err, want) {
		t.Errorf("err = %v, want %v untouched", err, want)
	}
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b := NewBreaker(3, 4)
	for i := 0; i < 2; i++ {
		if b.Failure() {
			t.Fatalf("breaker opened after %d failures, threshold is 3", i+1)
		}
	}
	if !b.Failure() {
		t.Fatal("breaker did not report opening on the 3rd consecutive failure")
	}
	if !b.Open() {
		t.Fatal("breaker should be open")
	}
	if b.Allow() {
		t.Fatal("open breaker admitted the first rejected call")
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := NewBreaker(3, 4)
	b.Failure()
	b.Failure()
	b.Success()
	if b.Failure() || b.Failure() {
		t.Fatal("breaker opened despite a success resetting the streak")
	}
	if !b.Failure() {
		t.Fatal("breaker should open after 3 consecutive failures post-reset")
	}
}

func TestBreakerProbeCadence(t *testing.T) {
	b := NewBreaker(1, 4)
	b.Failure()
	// Every 4th rejection is admitted as a probe; only one probe at a time.
	var admitted []int
	for i := 1; i <= 12; i++ {
		if b.Allow() {
			admitted = append(admitted, i)
			b.Failure() // failed probe keeps it open, allows future probes
		}
	}
	want := []int{4, 8, 12}
	if len(admitted) != len(want) {
		t.Fatalf("admitted probes at %v, want %v", admitted, want)
	}
	for i := range want {
		if admitted[i] != want[i] {
			t.Fatalf("admitted probes at %v, want %v", admitted, want)
		}
	}
}

func TestBreakerProbeSuccessCloses(t *testing.T) {
	b := NewBreaker(1, 2)
	b.Failure()
	for !b.Allow() {
	}
	if !b.Success() {
		t.Fatal("successful probe should report the open→closed transition")
	}
	if b.Open() {
		t.Fatal("breaker should be closed after a successful probe")
	}
	if !b.Allow() {
		t.Fatal("closed breaker should admit calls")
	}
}

func TestBreakerSingleProbeInFlight(t *testing.T) {
	b := NewBreaker(1, 2)
	b.Failure()
	for !b.Allow() {
	}
	// While the probe is in flight, nothing else is admitted even at the
	// probe cadence.
	for i := 0; i < 10; i++ {
		if b.Allow() {
			t.Fatal("second probe admitted while one is in flight")
		}
	}
}

func TestNilBreakerIsInert(t *testing.T) {
	var b *Breaker
	if !b.Allow() {
		t.Error("nil breaker must allow")
	}
	if b.Failure() || b.Success() || b.Open() {
		t.Error("nil breaker must report no transitions and stay closed")
	}
	if NewBreaker(0, 4) != nil {
		t.Error("threshold <= 0 should disable the breaker")
	}
}

// eventLog records Events notifications for assertions.
type eventLog struct {
	mu       sync.Mutex
	retries  []int
	timeouts int
	breaker  []bool
}

func (l *eventLog) EvalRetried(attempt int, delay time.Duration, cause error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.retries = append(l.retries, attempt)
}

func (l *eventLog) EvalTimedOut(timeout time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.timeouts++
}

func (l *eventLog) BreakerStateChanged(identity string, open bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.breaker = append(l.breaker, open)
}

// noSleep replaces backoff sleeps so retry tests run instantly.
func noSleep(context.Context, time.Duration) {}

func TestExecutorRetriesTransient(t *testing.T) {
	log := &eventLog{}
	e := NewExecutor(Policy{MaxAttempts: 4}, Config{Events: log, Sleep: noSleep})
	calls := 0
	loss, err := e.Do(context.Background(), func(context.Context) (float64, error) {
		calls++
		if calls < 3 {
			return 0, MarkTransient(errors.New("flaky"))
		}
		return 7.5, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss != 7.5 || calls != 3 {
		t.Errorf("loss=%v calls=%d, want 7.5 after 3 calls", loss, calls)
	}
	if len(log.retries) != 2 {
		t.Errorf("retry events = %v, want attempts [1 2]", log.retries)
	}
}

func TestExecutorDeterministicNotRetried(t *testing.T) {
	e := NewExecutor(Policy{MaxAttempts: 5}, Config{Sleep: noSleep})
	calls := 0
	_, err := e.Do(context.Background(), func(context.Context) (float64, error) {
		calls++
		return 0, errors.New("bad config")
	})
	if err == nil || calls != 1 {
		t.Fatalf("err=%v calls=%d, want one attempt and the error back", err, calls)
	}
	if Classify(err) != Deterministic {
		t.Errorf("Classify = %v, want Deterministic", Classify(err))
	}
}

func TestExecutorTransientExhaustsAttempts(t *testing.T) {
	log := &eventLog{}
	e := NewExecutor(Policy{MaxAttempts: 3}, Config{Events: log, Sleep: noSleep})
	calls := 0
	cause := errors.New("still flaky")
	_, err := e.Do(context.Background(), func(context.Context) (float64, error) {
		calls++
		return 0, MarkTransient(cause)
	})
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want the last transient cause", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want MaxAttempts = 3", calls)
	}
	if len(log.retries) != 2 {
		t.Errorf("retry events = %v, want 2 (between 3 attempts)", log.retries)
	}
}

func TestExecutorRecoversPanics(t *testing.T) {
	e := NewExecutor(Policy{}, Config{Sleep: noSleep})
	_, err := e.Do(context.Background(), func(context.Context) (float64, error) {
		panic("sim exploded")
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PanicError", err)
	}
	if Classify(err) != Deterministic {
		t.Error("panics must classify Deterministic (memoizable +Inf)")
	}
}

func TestExecutorTimeoutAbandonsHungAttempt(t *testing.T) {
	log := &eventLog{}
	e := NewExecutor(Policy{Timeout: 20 * time.Millisecond, MaxAttempts: 2}, Config{Events: log, Sleep: noSleep})
	var calls atomic.Int32 // the abandoned hung attempt races the retry
	start := time.Now()
	loss, err := e.Do(context.Background(), func(ctx context.Context) (float64, error) {
		if calls.Add(1) == 1 {
			<-ctx.Done() // hang until the attempt deadline
			return 0, ctx.Err()
		}
		return 1.25, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if loss != 1.25 {
		t.Errorf("loss = %v, want the retry's 1.25", loss)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("evaluation took %v: the hung attempt stalled the worker", elapsed)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if log.timeouts != 1 {
		t.Errorf("timeout events = %d, want 1", log.timeouts)
	}
	if len(log.retries) != 1 {
		t.Errorf("retry events = %v, want the timed-out attempt retried", log.retries)
	}
}

func TestExecutorTimeoutOnUnresponsiveSim(t *testing.T) {
	// A sim that ignores its context entirely: the worker must still be
	// freed at the deadline, and the abandoned goroutine must not leak a
	// send (the result channel is buffered).
	release := make(chan struct{})
	e := NewExecutor(Policy{Timeout: 10 * time.Millisecond, MaxAttempts: 1}, Config{Sleep: noSleep})
	_, err := e.Do(context.Background(), func(context.Context) (float64, error) {
		<-release
		return 0, nil
	})
	close(release)
	var te *TimeoutError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TimeoutError", err)
	}
	if te.Timeout != 10*time.Millisecond {
		t.Errorf("TimeoutError.Timeout = %v", te.Timeout)
	}
}

func TestExecutorParentCancelIsAborted(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewExecutor(Policy{Timeout: time.Second, MaxAttempts: 5}, Config{Sleep: noSleep})
	var calls atomic.Int32 // Do may return before the attempt goroutine exits
	_, err := e.Do(ctx, func(ctx context.Context) (float64, error) {
		calls.Add(1)
		return 0, ctx.Err()
	})
	if Classify(err) != Aborted {
		t.Fatalf("err = %v (class %v), want Aborted", err, Classify(err))
	}
	if n := calls.Load(); n > 1 {
		t.Errorf("aborted evaluation attempted %d times, want no retries", n)
	}
}

func TestExecutorBreakerTripsAndProbes(t *testing.T) {
	log := &eventLog{}
	e := NewExecutor(
		Policy{MaxAttempts: 1, BreakerThreshold: 2, BreakerProbe: 3},
		Config{Identity: "wrench/lod3", Events: log, Sleep: noSleep},
	)
	fail := func(context.Context) (float64, error) { return 0, errors.New("dead") }
	ok := func(context.Context) (float64, error) { return 2.5, nil }

	for i := 0; i < 2; i++ {
		if _, err := e.Do(context.Background(), fail); err == nil {
			t.Fatal("expected failure")
		}
	}
	if !e.BreakerOpen() {
		t.Fatal("breaker should be open after 2 consecutive failures")
	}
	// Rejections are fast-failures with ErrBreakerOpen...
	var rejections, probes int
	for i := 0; i < 6; i++ {
		_, err := e.Do(context.Background(), fail)
		if errors.Is(err, ErrBreakerOpen) {
			rejections++
		} else if err != nil {
			probes++
		}
	}
	if probes != 2 || rejections != 4 {
		t.Errorf("probes=%d rejections=%d, want 2 probes (every 3rd) and 4 rejections", probes, rejections)
	}
	// ...until a successful probe closes it.
	var closedVia float64 = math.NaN()
	for i := 0; i < 6; i++ {
		loss, err := e.Do(context.Background(), ok)
		if err == nil {
			closedVia = loss
			break
		}
	}
	if closedVia != 2.5 {
		t.Fatal("no successful probe admitted within the cadence window")
	}
	if e.BreakerOpen() {
		t.Error("breaker should close after a successful probe")
	}
	if _, err := e.Do(context.Background(), ok); err != nil {
		t.Errorf("closed breaker rejected a call: %v", err)
	}
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.breaker) != 2 || log.breaker[0] != true || log.breaker[1] != false {
		t.Errorf("breaker events = %v, want [open close]", log.breaker)
	}
}

func TestExecutorBackoffDeterministicBySeed(t *testing.T) {
	delays := func(seed int64) []time.Duration {
		var ds []time.Duration
		e := NewExecutor(
			Policy{MaxAttempts: 5, BaseDelay: 10 * time.Millisecond, MaxDelay: 40 * time.Millisecond},
			Config{Seed: seed, Sleep: func(_ context.Context, d time.Duration) { ds = append(ds, d) }},
		)
		_, _ = e.Do(context.Background(), func(context.Context) (float64, error) {
			return 0, MarkTransient(errors.New("flaky"))
		})
		return ds
	}
	a, b := delays(42), delays(42)
	if len(a) != 4 {
		t.Fatalf("got %d backoff sleeps, want MaxAttempts-1 = 4", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed produced different backoff: %v vs %v", a, b)
		}
	}
	// Exponential envelope with jitter in [0.5, 1.5): delay i from base 10ms
	// doubling to cap 40ms.
	caps := []time.Duration{10, 20, 40, 40}
	for i, d := range a {
		lo := caps[i] * time.Millisecond / 2
		hi := caps[i] * time.Millisecond * 3 / 2
		if d < lo || d >= hi {
			t.Errorf("delay %d = %v outside jitter envelope [%v, %v)", i, d, lo, hi)
		}
	}
	if c := delays(7); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] && c[3] == a[3] {
		t.Error("different seeds produced identical backoff sequences")
	}
}

func TestExecutorConcurrentUse(t *testing.T) {
	e := NewExecutor(
		Policy{Timeout: 50 * time.Millisecond, MaxAttempts: 3, BreakerThreshold: 100},
		Config{Sleep: noSleep},
	)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				_, _ = e.Do(context.Background(), func(context.Context) (float64, error) {
					switch (i + j) % 4 {
					case 0:
						return 0, MarkTransient(errors.New("flaky"))
					case 1:
						panic("boom")
					default:
						return float64(i + j), nil
					}
				})
			}
		}(i)
	}
	wg.Wait()
}
