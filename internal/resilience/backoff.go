package resilience

import (
	"sync"
	"time"

	"simcal/internal/stats"
)

// Backoff computes capped exponential retry delays with seeded jitter:
// base·2^(attempt−1), capped at max, scaled by a jitter factor in
// [0.5, 1.5) drawn from a deterministic stream. The same seed yields
// the same delay sequence, so retry cadences — evaluation retries,
// worker redials, session resumes — replay exactly. Safe for
// concurrent use.
type Backoff struct {
	base time.Duration
	max  time.Duration

	mu  sync.Mutex // guards rng (stats.RNG is not thread-safe)
	rng *stats.RNG
}

// NewBackoff returns a Backoff over [base, max]. base <= 0 defaults to
// 50ms, max <= 0 to 2s; base is clamped to max.
func NewBackoff(base, max time.Duration, seed int64) *Backoff {
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	if base > max {
		base = max
	}
	return &Backoff{base: base, max: max, rng: stats.NewRNG(seed)}
}

// Delay returns the jittered delay before retry number attempt
// (1-based). Each call advances the jitter stream.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := b.base
	for i := 1; i < attempt && d < b.max; i++ {
		d *= 2
	}
	if d > b.max {
		d = b.max
	}
	b.mu.Lock()
	jitter := 0.5 + b.rng.Float64()
	b.mu.Unlock()
	return time.Duration(float64(d) * jitter)
}
