package resilience

import "sync"

// Breaker is a consecutive-failure circuit breaker. After Threshold
// evaluation failures in a row it opens and rejects calls without
// running them, so a simulator identity (an LoD cell whose binary is
// broken, a dead remote endpoint) degrades to fast +Inf losses instead
// of burning wall-clock budget on doomed attempts.
//
// Recovery is probe-based and deterministic: while open, every Probe-th
// rejected call is let through as a half-open probe. A successful probe
// closes the breaker; a failed one keeps it open. Counting calls rather
// than wall-clock time keeps replayed calibrations bitwise-identical —
// a time-based cool-down would make breaker behavior depend on machine
// speed.
//
// The zero Breaker is unusable; construct with NewBreaker. A nil
// *Breaker is inert: Allow always reports true and outcomes are
// ignored, so callers can thread "no breaker" without branching.
type Breaker struct {
	threshold int
	probe     int

	mu       sync.Mutex
	failures int  // consecutive failures observed
	open     bool // tripped state
	rejected int  // rejections since opening, drives probe cadence
	probing  bool // a half-open probe is in flight
}

// NewBreaker returns a breaker that opens after threshold consecutive
// failures and lets every probe-th rejected call through as a half-open
// probe. threshold <= 0 disables the breaker (returns nil); probe <= 0
// defaults to 16.
func NewBreaker(threshold, probe int) *Breaker {
	if threshold <= 0 {
		return nil
	}
	if probe <= 0 {
		probe = 16
	}
	return &Breaker{threshold: threshold, probe: probe}
}

// Allow reports whether a call may proceed. When the breaker is open it
// admits every probe-th rejected call as a half-open probe (at most one
// probe in flight at a time) and rejects the rest.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.open {
		return true
	}
	if b.probing {
		return false
	}
	b.rejected++
	if b.rejected%b.probe == 0 {
		b.probing = true
		return true
	}
	return false
}

// Success records a successful evaluation, closing the breaker and
// resetting the failure streak. It reports whether the state changed
// from open to closed.
func (b *Breaker) Success() (closed bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	closed = b.open
	b.open = false
	b.failures = 0
	b.rejected = 0
	b.probing = false
	return closed
}

// Failure records a failed evaluation. It reports whether the breaker
// transitioned from closed to open on this failure.
func (b *Breaker) Failure() (opened bool) {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	b.failures++
	if !b.open && b.failures >= b.threshold {
		b.open = true
		b.rejected = 0
		return true
	}
	return false
}

// Open reports whether the breaker is currently tripped.
func (b *Breaker) Open() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}
