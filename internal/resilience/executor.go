package resilience

import (
	"context"
	"time"
)

// Policy configures the fault-tolerant evaluation runtime. The zero
// Policy disables everything (no timeout, single attempt, no breaker);
// DefaultPolicy returns the recommended production settings.
type Policy struct {
	// Timeout bounds each evaluation attempt. A hung simulator is
	// abandoned after Timeout and the attempt classified Transient;
	// <= 0 disables per-attempt timeouts.
	Timeout time.Duration
	// MaxAttempts bounds how many times one evaluation runs before a
	// transient failure is surfaced. Values < 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; each further
	// retry doubles it up to MaxDelay. Defaults to 50ms when a retry is
	// needed and BaseDelay <= 0.
	BaseDelay time.Duration
	// MaxDelay caps the exponential backoff. Defaults to 2s when <= 0.
	MaxDelay time.Duration
	// BreakerThreshold opens the circuit breaker after that many
	// consecutive failed evaluations of one simulator identity; <= 0
	// disables the breaker.
	BreakerThreshold int
	// BreakerProbe admits every BreakerProbe-th rejected call as a
	// half-open probe while the breaker is open. Defaults to 16.
	BreakerProbe int
}

// DefaultPolicy returns the production defaults: 1-minute attempt
// timeout, 4 attempts per evaluation, 50ms–2s backoff, breaker tripping
// after 8 consecutive failures with a probe every 16 rejections.
func DefaultPolicy() Policy {
	return Policy{
		Timeout:          time.Minute,
		MaxAttempts:      4,
		BaseDelay:        50 * time.Millisecond,
		MaxDelay:         2 * time.Second,
		BreakerThreshold: 8,
		BreakerProbe:     16,
	}
}

// Events receives recovery notifications from an Executor. Implementations
// must be safe for concurrent use; a nil Events on Config silently drops
// all notifications. The calibration core bridges these to the obs
// metrics registry and tracer.
type Events interface {
	// EvalRetried fires before each backoff sleep: attempt is the
	// 1-based attempt that just failed, delay the upcoming backoff, and
	// cause the transient error being retried.
	EvalRetried(attempt int, delay time.Duration, cause error)
	// EvalTimedOut fires when an attempt exceeds the per-attempt timeout.
	EvalTimedOut(timeout time.Duration)
	// BreakerStateChanged fires when the identity's breaker opens
	// (open=true) or closes after a successful probe (open=false).
	BreakerStateChanged(identity string, open bool)
}

// Config carries the per-calibration wiring of an Executor.
type Config struct {
	// Identity names the simulator (LoD cell) this executor guards; it
	// labels breaker state-change events.
	Identity string
	// Seed seeds the backoff jitter stream so retried runs remain
	// reproducible.
	Seed int64
	// Events receives recovery notifications; nil drops them.
	Events Events
	// Sleep replaces the backoff sleep in tests; nil uses a
	// context-aware time.Sleep.
	Sleep func(ctx context.Context, d time.Duration)
}

// Executor runs evaluation attempts under a Policy: per-attempt
// timeouts, bounded retries with seeded exponential backoff, and a
// consecutive-failure circuit breaker. One Executor guards one
// simulator identity and is safe for concurrent use by the evaluation
// worker pool.
type Executor struct {
	policy  Policy
	breaker *Breaker
	cfg     Config
	bo      *Backoff
}

// NewExecutor returns an Executor applying policy with the given wiring.
func NewExecutor(policy Policy, cfg Config) *Executor {
	if policy.MaxAttempts < 1 {
		policy.MaxAttempts = 1
	}
	if policy.BaseDelay <= 0 {
		policy.BaseDelay = 50 * time.Millisecond
	}
	if policy.MaxDelay <= 0 {
		policy.MaxDelay = 2 * time.Second
	}
	return &Executor{
		policy:  policy,
		breaker: NewBreaker(policy.BreakerThreshold, policy.BreakerProbe),
		cfg:     cfg,
		bo:      NewBackoff(policy.BaseDelay, policy.MaxDelay, cfg.Seed),
	}
}

// attemptResult carries one attempt's outcome across the timeout
// goroutine boundary.
type attemptResult struct {
	loss float64
	err  error
}

// Do runs fn as one fault-tolerant evaluation: a breaker check, then up
// to MaxAttempts attempts, each bounded by the per-attempt timeout and
// executed under panic recovery. Transient failures are retried after a
// seeded jittered exponential backoff; deterministic failures and
// caller-context aborts return immediately. The error returned (if any)
// is already classified — callers decide memoization from Classify.
func (e *Executor) Do(ctx context.Context, fn func(ctx context.Context) (float64, error)) (float64, error) {
	if !e.breaker.Allow() {
		return 0, ErrBreakerOpen
	}
	var loss float64
	var err error
	for attempt := 1; ; attempt++ {
		loss, err = e.attempt(ctx, fn)
		if err == nil {
			if e.breaker.Success() {
				e.breakerChanged(false)
			}
			return loss, nil
		}
		class := Classify(err)
		if class == Aborted && ctx.Err() != nil {
			// The caller's budget expired or the run was canceled: not an
			// evaluation failure, so the breaker stays untouched.
			return 0, err
		}
		if class == Transient && attempt < e.policy.MaxAttempts {
			delay := e.backoff(attempt)
			if e.cfg.Events != nil {
				e.cfg.Events.EvalRetried(attempt, delay, err)
			}
			e.sleep(ctx, delay)
			if ctx.Err() != nil {
				return 0, ctx.Err()
			}
			continue
		}
		if e.breaker.Failure() {
			e.breakerChanged(true)
		}
		return 0, err
	}
}

// attempt executes fn once under panic recovery and, when the policy
// sets a per-attempt timeout, a deadline. A timed-out simulator is
// abandoned: its goroutine unblocks whenever it honors the canceled
// attempt context (or eventually returns into the buffered channel),
// while the worker moves on immediately.
func (e *Executor) attempt(ctx context.Context, fn func(ctx context.Context) (float64, error)) (float64, error) {
	run := func(ctx context.Context) (loss float64, err error) {
		err = Safely(func() error {
			var ferr error
			loss, ferr = fn(ctx)
			return ferr
		})
		return loss, err
	}
	if e.policy.Timeout <= 0 {
		return run(ctx)
	}
	actx, cancel := context.WithTimeout(ctx, e.policy.Timeout)
	defer cancel()
	ch := make(chan attemptResult, 1) // buffered: an abandoned attempt can still complete
	go func() {
		loss, err := run(actx)
		ch <- attemptResult{loss: loss, err: err}
	}()
	timedOut := func() (float64, error) {
		if e.cfg.Events != nil {
			e.cfg.Events.EvalTimedOut(e.policy.Timeout)
		}
		return 0, &TimeoutError{Timeout: e.policy.Timeout}
	}
	select {
	case res := <-ch:
		// A well-behaved simulator may notice the attempt deadline itself
		// and return context.DeadlineExceeded; normalize that to a timeout
		// as long as the caller's own context is still alive, so it is
		// classified Transient rather than Aborted.
		if res.err != nil && actx.Err() == context.DeadlineExceeded && ctx.Err() == nil {
			return timedOut()
		}
		return res.loss, res.err
	case <-actx.Done():
		if ctx.Err() != nil {
			return 0, ctx.Err()
		}
		return timedOut()
	}
}

// backoff returns the jittered exponential delay before retry number
// attempt (1-based); see Backoff.
func (e *Executor) backoff(attempt int) time.Duration {
	return e.bo.Delay(attempt)
}

// sleep waits for d or until ctx is canceled.
func (e *Executor) sleep(ctx context.Context, d time.Duration) {
	if e.cfg.Sleep != nil {
		e.cfg.Sleep(ctx, d)
		return
	}
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ctx.Done():
	}
}

// breakerChanged forwards a breaker state transition to Events.
func (e *Executor) breakerChanged(open bool) {
	if e.cfg.Events != nil {
		e.cfg.Events.BreakerStateChanged(e.cfg.Identity, open)
	}
}

// BreakerOpen reports whether this executor's breaker is currently open.
func (e *Executor) BreakerOpen() bool { return e.breaker.Open() }
