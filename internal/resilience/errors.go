// Package resilience makes long calibrations survive the failure modes
// the paper's real runs hit over 24–48 h wall-clock budgets against
// external simulators: panicking evaluations, hung simulator processes,
// transient infrastructure errors, and repeatedly failing level-of-detail
// configurations.
//
// It provides three building blocks, all independent of the calibration
// core so any evaluation-shaped code can use them:
//
//   - error classification (Classify, MarkTransient, PanicError,
//     TimeoutError): transient failures deserve a retry, deterministic
//     failures deserve memoization as +Inf, and budget-expiry aborts
//     deserve neither;
//   - panic isolation (Safely): a panic in a simulator or surrogate fit
//     becomes a classified error instead of killing the process;
//   - an Executor combining per-attempt timeouts, bounded retries with
//     seeded exponential backoff, and a consecutive-failure circuit
//     breaker (Breaker) per simulator identity.
//
// Retries and timeouts happen inside one loss evaluation, so they never
// consume evaluation budget — the calibration budget counts completed
// evaluations, each of which internally made one or more attempts.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// Class partitions evaluation errors by the recovery they deserve.
type Class int

const (
	// Deterministic failures re-occur on every attempt at the same point
	// (invalid simulator configuration, panicking parameter region). They
	// are not retried; callers memoize them as +Inf losses so the search
	// avoids the region without re-running it.
	Deterministic Class = iota
	// Transient failures may succeed on retry (timeouts, infrastructure
	// hiccups, errors wrapped by MarkTransient). The Executor retries
	// them with exponential backoff; exhausted retries surface the last
	// error, which callers record as +Inf without memoizing it.
	Transient
	// Aborted errors come from the caller's own context (budget expiry,
	// cancellation). They are neither retried nor recorded as losses.
	Aborted
)

// String returns the class name for logs and trace payloads.
func (c Class) String() string {
	switch c {
	case Deterministic:
		return "deterministic"
	case Transient:
		return "transient"
	case Aborted:
		return "aborted"
	}
	return fmt.Sprintf("Class(%d)", int(c))
}

// ParseClass is the inverse of Class.String: it maps a class name (as
// carried on the distributed evaluation wire) back to its Class. The
// second result reports whether the name was recognized.
func ParseClass(s string) (Class, bool) {
	switch s {
	case "deterministic":
		return Deterministic, true
	case "transient":
		return Transient, true
	case "aborted":
		return Aborted, true
	}
	return Deterministic, false
}

// PanicError is a recovered panic converted into an error. It classifies
// as Deterministic: a panicking simulator configuration panics again on
// retry, so the point is memoized as +Inf instead of re-executed.
type PanicError struct {
	// Value is the value passed to panic.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string { return fmt.Sprintf("resilience: recovered panic: %v", e.Value) }

// NewPanicError wraps a recovered panic value. A nil stack captures the
// current goroutine's stack.
func NewPanicError(value any, stack []byte) *PanicError {
	if stack == nil {
		stack = debug.Stack()
	}
	return &PanicError{Value: value, Stack: stack}
}

// TimeoutError reports an evaluation attempt that exceeded the
// Executor's per-attempt timeout. It classifies as Transient: a hung
// external simulator often responds on a fresh attempt.
type TimeoutError struct {
	// Timeout is the per-attempt bound that was exceeded.
	Timeout time.Duration
}

// Error implements error.
func (e *TimeoutError) Error() string {
	return fmt.Sprintf("resilience: evaluation exceeded the %s per-attempt timeout", e.Timeout)
}

// ErrBreakerOpen is returned (wrapped) by Executor.Do when the circuit
// breaker rejects an evaluation without running it. It classifies as
// Transient so the fail-fast +Inf loss is never memoized — the breaker
// may close again and the point deserves a real evaluation then.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// transientError marks a wrapped error as worth retrying.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// MarkTransient marks err as a transient failure: the Executor retries
// it with backoff instead of failing the evaluation. A nil err returns
// nil.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientError{err: err}
}

// Classify maps an evaluation error to its recovery class. Unrecognized
// errors are Deterministic — the safe default for simulator failures,
// matching the historical "failed evaluation → memoized +Inf" contract.
// A nil error has no class and reports Deterministic; callers should
// test err != nil first.
func Classify(err error) Class {
	var pe *PanicError
	if errors.As(err, &pe) {
		return Deterministic
	}
	var te *TimeoutError
	if errors.As(err, &te) {
		return Transient
	}
	var tr *transientError
	if errors.As(err, &tr) {
		return Transient
	}
	if errors.Is(err, ErrBreakerOpen) {
		return Transient
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Aborted
	}
	return Deterministic
}

// Safely invokes fn, converting a panic into a *PanicError. The
// calibration core wraps every simulator run and surrogate fit with it
// so a panicking evaluation degrades to a classified error instead of
// killing the whole multi-hour calibration.
func Safely(fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = NewPanicError(r, debug.Stack())
		}
	}()
	return fn()
}
