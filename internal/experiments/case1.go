package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"simcal/internal/core"
	"simcal/internal/groundtruth"
	"simcal/internal/loss"
	"simcal/internal/simspec"
	"simcal/internal/stats"
	"simcal/internal/wfgen"
	"simcal/internal/wfsim"
)

// Table3Result holds the calibration error (percent relative L1 distance
// to the planted calibration) for every algorithm × loss-function pair —
// the paper's Table 3.
type Table3Result struct {
	Losses     []string
	Algorithms []string
	// Errors[alg][loss] is the calibration error.
	Errors map[string]map[string]float64
	// Winner is the (algorithm, loss) pair with the lowest error.
	WinnerAlg, WinnerLoss string
}

// Table3 runs the synthetic-benchmarking selection of Section 5.3.2:
// plant the true calibration in the highest-detail workflow simulator,
// generate synthetic ground truth, calibrate with every algorithm × loss
// pair, and report the calibration errors.
func Table3(ctx context.Context, o Options) (*Table3Result, error) {
	v := wfsim.HighestDetail
	gt := trainingWFOptions(o)
	planted := groundtruth.WorkflowTruthPoint(v)
	// With a Remote hook the workers build the synthetic dataset from
	// the spec; only local evaluation needs it in this process.
	var syn *groundtruth.WFDataset
	if o.Remote == nil {
		template, err := groundtruth.GenerateWorkflowData(gt)
		if err != nil {
			return nil, err
		}
		syn, err = groundtruth.SyntheticWorkflowData(v, planted, template)
		if err != nil {
			return nil, err
		}
	}
	res := &Table3Result{Errors: make(map[string]map[string]float64)}
	for _, kind := range loss.AllWFKinds {
		res.Losses = append(res.Losses, kind.String())
	}
	algs := algorithms()
	for _, alg := range algs {
		res.Algorithms = append(res.Algorithms, alg.Name())
		res.Errors[alg.Name()] = make(map[string]float64)
	}
	nk := len(loss.AllWFKinds)
	ces, err := RunJobsLogged(ctx, o.sched(), o.RunLog, "table3", len(algs)*nk, func(ctx context.Context, i int) (float64, error) {
		ai, ki := i/nk, i%nk
		// Fresh algorithm instance per cell: algorithms may keep
		// internal state and cells run concurrently.
		alg := algorithms()[ai]
		kind := loss.AllWFKinds[ki]
		sim, err := o.simulator(simspec.ForWF(v, kind, gt, true),
			func() (core.Simulator, error) { return loss.WFEvaluator(v, kind, syn), nil })
		if err != nil {
			return 0, fmt.Errorf("table3 %s/%s: %w", alg.Name(), kind, err)
		}
		// Distinct seed per cell: with a shared seed, RAND would
		// evaluate the identical point sequence for every loss and
		// the whole row would collapse to one value.
		cal := o.calibrator(v.Space(), sim, alg,
			o.Seed+int64(100*ai+ki+1), o.cacheKey("table3/wf/"+kind.String()))
		r, err := cal.Run(ctx)
		if err != nil {
			return 0, fmt.Errorf("table3 %s/%s: %w", alg.Name(), kind, err)
		}
		return core.CalibrationError(v.Space(), r.Best.Point, planted), nil
	})
	if err != nil {
		return nil, err
	}
	best := -1.0
	for i, ce := range ces {
		ai, ki := i/nk, i%nk
		res.Errors[algs[ai].Name()][loss.AllWFKinds[ki].String()] = ce
		if best < 0 || ce < best {
			best = ce
			res.WinnerAlg, res.WinnerLoss = algs[ai].Name(), loss.AllWFKinds[ki].String()
		}
	}
	return res, nil
}

// ConvergencePoint is one sample of a loss-vs-time curve.
type ConvergencePoint struct {
	Elapsed     time.Duration
	Evaluations int
	Loss        float64
}

// Figure1Result is the loss-vs-time convergence curve of Figure 1.
type Figure1Result struct {
	App    wfgen.App
	Points []ConvergencePoint
}

// Figure1 calibrates the highest-detail workflow simulator against all
// ground-truth data for one application and traces the best-so-far loss
// over time.
func Figure1(ctx context.Context, o Options) (*Figure1Result, error) {
	app := wfgen.Epigenomics
	if len(o.WFApps) > 0 {
		app = o.WFApps[0]
	}
	gt := groundtruth.WFOptions{
		Apps:    []wfgen.App{app},
		SizeIdx: o.WFSizeIdx, WorkIdx: o.WFWorkIdx, FootIdx: o.WFFootIdx,
		Workers: o.WFWorkers, Reps: o.Reps, Seed: o.Seed,
	}
	v := wfsim.HighestDetail
	sim, err := o.simulator(simspec.ForWF(v, loss.WFL1, gt, false),
		func() (core.Simulator, error) {
			ds, err := groundtruth.GenerateWorkflowData(gt)
			if err != nil {
				return nil, err
			}
			return loss.WFEvaluator(v, loss.WFL1, ds), nil
		})
	if err != nil {
		return nil, err
	}
	cal := o.calibrator(v.Space(), sim, algorithms()[1],
		o.Seed, o.cacheKey("figure1/wf/L1"))
	r, err := cal.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := &Figure1Result{App: app}
	best := r.History[0].Loss
	for i, s := range r.History {
		if s.Loss < best {
			best = s.Loss
		}
		out.Points = append(out.Points, ConvergencePoint{Elapsed: s.Elapsed, Evaluations: i + 1, Loss: best})
	}
	return out, nil
}

// VersionAccuracy reports the post-calibration accuracy of one simulator
// version (one bar of Figure 2 / Figure 5).
type VersionAccuracy struct {
	Version string
	// AvgError, MinError, MaxError are percent relative errors over the
	// testing dataset (makespans for case 1, transfer rates for case 2).
	AvgError, MinError, MaxError float64
	// TrainLoss is the loss achieved on the training dataset.
	TrainLoss float64
	Params    int
	// SimMicros is the wall-clock cost of one simulated execution at
	// this level of detail, in microseconds — the "simulation speed"
	// dimension the paper notes users weigh against accuracy.
	SimMicros float64
}

// Figure2Result compares all 12 calibrated workflow simulator versions.
type Figure2Result struct {
	Versions []VersionAccuracy
	// Best names the most accurate version.
	Best string
}

// Figure2 implements Section 5.4: calibrate every simulator version on
// the training dataset (second-largest worker count and workflow size)
// and evaluate percent makespan error on the testing dataset (largest
// executions).
func Figure2(ctx context.Context, o Options) (*Figure2Result, error) {
	full, err := fullDataset(o)
	if err != nil {
		return nil, err
	}
	train, test := splitTrainTest(full, o)
	versions := wfsim.AllVersions()
	vas, err := RunJobsLogged(ctx, o.sched(), o.RunLog, "figure2", len(versions), func(ctx context.Context, i int) (*VersionAccuracy, error) {
		va, err := calibrateAndTestWF(ctx, o, versions[i], train, test, "train")
		if err != nil {
			return nil, fmt.Errorf("figure2 %s: %w", versions[i].Name(), err)
		}
		return va, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure2Result{}
	bestAvg := -1.0
	for _, va := range vas {
		res.Versions = append(res.Versions, *va)
		if bestAvg < 0 || va.AvgError < bestAvg {
			bestAvg = va.AvgError
			res.Best = va.Version
		}
	}
	return res, nil
}

// calibrateAndTestWF calibrates one version on train and scores it on
// test. dsKey names the training dataset for the evaluation cache
// (calibrations of the same version on the same data — e.g. Figure 2
// and Baseline 1 — legitimately share entries).
func calibrateAndTestWF(ctx context.Context, o Options, v wfsim.Version, train, test *groundtruth.WFDataset, dsKey string) (*VersionAccuracy, error) {
	r, err := o.calibrateBest(ctx, v.Space(), loss.WFEvaluator(v, loss.WFL1, train), algorithms()[1],
		o.Seed, o.cacheKey("wf/L1/"+dsKey+"/"+v.Name()))
	if err != nil {
		return nil, err
	}
	cfg := v.DecodeConfig(r.Best.Point)
	simStart := time.Now()
	errs, err := loss.WFMakespanErrors(v, cfg, test)
	if err != nil {
		return nil, err
	}
	simMicros := float64(time.Since(simStart).Microseconds()) / float64(len(test.Groups))
	return &VersionAccuracy{
		Version:   v.Name(),
		AvgError:  stats.Mean(errs),
		MinError:  stats.Min(errs),
		MaxError:  stats.Max(errs),
		TrainLoss: r.Best.Loss,
		Params:    v.Space().Dim(),
		SimMicros: simMicros,
	}, nil
}

// Baseline1Result is Section 5.4's no-calibration comparison: the lowest
// level of detail with parameter values read off hardware
// specifications.
type Baseline1Result struct {
	// SpecError is the percent makespan error of the spec-based
	// parameters; CalibratedError is the same simulator version after
	// automated calibration.
	SpecError, CalibratedError float64
	// PerApp maps application → spec-based average error.
	PerApp map[wfgen.App]float64
}

// SpecBasedConfig returns the parameter values a user would read off the
// Chameleon Cloud hardware documentation: nominal CPU clock×IPC, 10 Gb/s
// network, datasheet disk bandwidth, and — critically — no middleware
// overheads, since no datasheet documents HTCondor's scheduling costs.
func SpecBasedConfig() wfsim.Config {
	return wfsim.Config{
		CoreSpeed: 2.4e9 * 4, // 2.4 GHz Icelake × nominal 4 ops/cycle
		DiskBW:    500e6,     // datasheet sequential bandwidth
		DiskConc:  64,
		LinkBW:    1.25e9, // 10 Gb/s NIC
		LinkLat:   5e-5,
	}
}

// Baseline1 measures the spec-based lowest-detail simulator against the
// calibrated one on the testing dataset.
func Baseline1(ctx context.Context, o Options) (*Baseline1Result, error) {
	full, err := fullDataset(o)
	if err != nil {
		return nil, err
	}
	train, test := splitTrainTest(full, o)
	v := wfsim.LowestDetail
	specErrs, err := loss.WFMakespanErrors(v, SpecBasedConfig(), test)
	if err != nil {
		return nil, err
	}
	va, err := calibrateAndTestWF(ctx, o, v, train, test, "train")
	if err != nil {
		return nil, err
	}
	out := &Baseline1Result{
		SpecError:       stats.Mean(specErrs),
		CalibratedError: va.AvgError,
		PerApp:          make(map[wfgen.App]float64),
	}
	perApp := make(map[wfgen.App][]float64)
	for i, g := range test.Groups {
		perApp[g.Spec.App] = append(perApp[g.Spec.App], specErrs[i])
	}
	for app, errs := range perApp {
		out.PerApp[app] = stats.Mean(errs)
	}
	return out, nil
}

// trainingWFOptions resolves the generation options of the default
// training dataset: per app, the second-largest worker count and
// second-largest size (Section 5.4). The resolved options double as the
// dataset description shipped to remote workers inside simulator specs.
func trainingWFOptions(o Options) groundtruth.WFOptions {
	sizeIdx := secondLargestIdx(o.WFSizeIdx, len(wfgen.Table1[wfgen.Epigenomics].Sizes))
	workerIdx := secondLargestIdx(nil, len(defaultWorkers(o)))
	workers := defaultWorkers(o)
	return groundtruth.WFOptions{
		Apps:    o.WFApps,
		SizeIdx: []int{sizeIdx},
		WorkIdx: o.WFWorkIdx,
		FootIdx: o.WFFootIdx,
		Workers: []int{workers[workerIdx]},
		Reps:    o.Reps,
		Seed:    o.Seed,
	}
}

// trainingDataset builds the default training dataset (see
// trainingWFOptions).
func trainingDataset(o Options) (*groundtruth.WFDataset, error) {
	return groundtruth.GenerateWorkflowData(trainingWFOptions(o))
}

// fullDataset generates the complete ground-truth grid for the options.
func fullDataset(o Options) (*groundtruth.WFDataset, error) {
	return groundtruth.GenerateWorkflowData(groundtruth.WFOptions{
		Apps:    o.WFApps,
		SizeIdx: o.WFSizeIdx, WorkIdx: o.WFWorkIdx, FootIdx: o.WFFootIdx,
		Workers: defaultWorkers(o), Reps: o.Reps, Seed: o.Seed,
	})
}

// splitTrainTest implements the paper's split: testing = the "large"
// executions (largest worker count with size above minimum, or largest
// size with worker count above minimum); training = second-largest
// worker count and second-largest size.
func splitTrainTest(full *groundtruth.WFDataset, o Options) (train, test *groundtruth.WFDataset) {
	workers := defaultWorkers(o)
	maxWorkers := workers[len(workers)-1]
	trainWorkers := workers[max(0, len(workers)-2)]
	sizesOf := func(app wfgen.App) []int {
		sizes := wfgen.Table1[app].Sizes
		var out []int
		if o.WFSizeIdx == nil {
			out = append(out, sizes...)
		} else {
			for _, i := range o.WFSizeIdx {
				out = append(out, sizes[i])
			}
		}
		sort.Ints(out)
		return out
	}
	test = full.Filter(func(g *groundtruth.WFGroup) bool {
		sizes := sizesOf(g.Spec.App)
		maxSize, minSize := sizes[len(sizes)-1], sizes[0]
		if g.Workers == maxWorkers && g.Spec.Tasks > minSize {
			return true
		}
		return g.Spec.Tasks == maxSize && g.Workers > workers[0]
	})
	train = full.Filter(func(g *groundtruth.WFGroup) bool {
		sizes := sizesOf(g.Spec.App)
		trainSize := sizes[max(0, len(sizes)-2)]
		return g.Workers == trainWorkers && g.Spec.Tasks == trainSize
	})
	return train, test
}

func defaultWorkers(o Options) []int {
	if len(o.WFWorkers) > 0 {
		ws := append([]int(nil), o.WFWorkers...)
		sort.Ints(ws)
		return ws
	}
	return []int{1, 2, 4, 6}
}

// secondLargestIdx returns the index of the second-largest element given
// either an explicit index subset or the full range length.
func secondLargestIdx(subset []int, n int) int {
	if subset == nil {
		return max(0, n-2)
	}
	sorted := append([]int(nil), subset...)
	sort.Ints(sorted)
	return sorted[max(0, len(sorted)-2)]
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
