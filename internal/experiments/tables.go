package experiments

import (
	"fmt"
	"sort"
	"strings"

	"simcal/internal/mpisim"
	"simcal/internal/wfgen"
	"simcal/internal/wfsim"
)

// Table1Row describes one application's benchmark grid.
type Table1Row struct {
	App          wfgen.App
	Sizes        []int
	WorkSeconds  []float64
	FootprintsMB []float64
	// Generated confirms every size generates a valid workflow of
	// exactly that size.
	Generated bool
}

// Table1Rows reproduces the paper's Table 1 and validates every
// configuration by generating it.
func Table1Rows() []Table1Row {
	var rows []Table1Row
	for _, app := range wfgen.AllApps {
		spec := wfgen.Table1[app]
		row := Table1Row{App: app, Sizes: spec.Sizes, WorkSeconds: spec.WorkSeconds, FootprintsMB: spec.FootprintsMB, Generated: true}
		for _, n := range spec.Sizes {
			w := wfgen.Generate(wfgen.Spec{App: app, Tasks: n, WorkSeconds: 1, FootprintBytes: 150 * wfgen.MB})
			if w.Size() != n || w.Validate() != nil {
				row.Generated = false
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// Table2Row describes one workflow simulator version (Table 2).
type Table2Row struct {
	Version string
	Params  int
	Names   []string
}

// Table2Rows enumerates the 12 workflow simulator versions and their
// calibratable parameters.
func Table2Rows() []Table2Row {
	var rows []Table2Row
	for _, v := range wfsim.AllVersions() {
		sp := v.Space()
		row := Table2Row{Version: v.Name(), Params: sp.Dim()}
		for _, s := range sp {
			row.Names = append(row.Names, s.Name)
		}
		rows = append(rows, row)
	}
	return rows
}

// Table4Row describes one MPI simulator version (Table 4).
type Table4Row struct {
	Version string
	Params  int
	Names   []string
}

// Table4Rows enumerates the 16 MPI simulator versions and their
// calibratable parameters.
func Table4Rows() []Table4Row {
	var rows []Table4Row
	for _, v := range mpisim.AllVersions() {
		sp := v.Space()
		row := Table4Row{Version: v.Name(), Params: sp.Dim()}
		for _, s := range sp {
			row.Names = append(row.Names, s.Name)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatTable renders rows of cells as an aligned text table.
func FormatTable(header []string, rows [][]string) string {
	width := make([]int, len(header))
	for i, h := range header {
		width[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	line(header)
	var sep []string
	for _, w := range width {
		sep = append(sep, strings.Repeat("-", w))
	}
	line(sep)
	for _, r := range rows {
		line(r)
	}
	return b.String()
}

// FormatMatrix renders a map[alg]map[loss]float64 as a table with one
// row per algorithm.
func FormatMatrix(title string, algs, losses []string, m map[string]map[string]float64) string {
	header := append([]string{title}, losses...)
	var rows [][]string
	for _, a := range algs {
		row := []string{a}
		for _, l := range losses {
			row = append(row, fmt.Sprintf("%.2f", m[a][l]))
		}
		rows = append(rows, row)
	}
	return FormatTable(header, rows)
}

// FormatVersionAccuracy renders Figure 2 / Figure 5-style results.
func FormatVersionAccuracy(vs []VersionAccuracy) string {
	header := []string{"version", "params", "avg%err", "min%err", "max%err", "train-loss", "sim-µs"}
	var rows [][]string
	for _, v := range vs {
		rows = append(rows, []string{
			v.Version,
			fmt.Sprintf("%d", v.Params),
			fmt.Sprintf("%.1f", v.AvgError),
			fmt.Sprintf("%.1f", v.MinError),
			fmt.Sprintf("%.1f", v.MaxError),
			fmt.Sprintf("%.4f", v.TrainLoss),
			fmt.Sprintf("%.0f", v.SimMicros),
		})
	}
	return FormatTable(header, rows)
}

// FormatConvergence renders a loss-vs-time curve, subsampled.
func FormatConvergence(points []ConvergencePoint, maxRows int) string {
	header := []string{"evals", "elapsed", "best-loss"}
	var rows [][]string
	stride := 1
	if maxRows > 0 && len(points) > maxRows {
		stride = len(points)/maxRows + 1
	}
	for i := 0; i < len(points); i += stride {
		p := points[i]
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Evaluations),
			p.Elapsed.Round(1000000).String(),
			fmt.Sprintf("%.4f", p.Loss),
		})
	}
	if len(points) > 0 && (len(points)-1)%stride != 0 {
		p := points[len(points)-1]
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Evaluations),
			p.Elapsed.Round(1000000).String(),
			fmt.Sprintf("%.4f", p.Loss),
		})
	}
	return FormatTable(header, rows)
}

// FormatFigure3 renders the training-cost-vs-loss scatter as rows sorted
// by cost.
func FormatFigure3(r *Figure3Result) string {
	pts := append([]Figure3Point(nil), r.Points...)
	sort.Slice(pts, func(i, j int) bool { return pts[i].Cost < pts[j].Cost })
	header := []string{"app", "scheme", "workers", "tasks", "cost(s)", "test-loss", "ref"}
	var rows [][]string
	for _, p := range pts {
		ref := ""
		if p.Reference {
			ref = "*"
		}
		rows = append(rows, []string{
			string(p.App), p.Scheme,
			fmt.Sprintf("%d", p.Workers), fmt.Sprintf("%d", p.Tasks),
			fmt.Sprintf("%.0f", p.Cost), fmt.Sprintf("%.4f", p.TestLoss), ref,
		})
	}
	return FormatTable(header, rows)
}
