package experiments

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"

	"simcal/internal/cache"
	"simcal/internal/resilience"
)

func TestNewSchedulerSequentialBelowTwo(t *testing.T) {
	for _, jobs := range []int{-1, 0, 1} {
		if s := NewScheduler(jobs); s != nil {
			t.Errorf("NewScheduler(%d) = %v, want nil (sequential)", jobs, s)
		}
	}
	if NewScheduler(2) == nil {
		t.Error("NewScheduler(2) = nil, want a pool")
	}
}

func TestRunJobsIndexOrder(t *testing.T) {
	for _, s := range []*Scheduler{nil, NewScheduler(4)} {
		got, err := RunJobs(context.Background(), s, 20, func(_ context.Context, i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("results[%d] = %d: not in index order", i, v)
			}
		}
	}
}

func TestRunJobsBoundsConcurrency(t *testing.T) {
	const jobs = 3
	var running, peak atomic.Int64
	_, err := RunJobs(context.Background(), NewScheduler(jobs), 24, func(_ context.Context, i int) (int, error) {
		n := running.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		defer running.Add(-1)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > jobs {
		t.Errorf("peak concurrency %d exceeds pool size %d", p, jobs)
	}
}

// TestRunJobsRunsAllAndJoinsErrors: a cell failure must not discard
// sibling work — every job runs, every failure surfaces (joined and
// index-tagged), and successful results stay available.
func TestRunJobsRunsAllAndJoinsErrors(t *testing.T) {
	boom1 := errors.New("cell 1 exploded")
	boom5 := errors.New("cell 5 exploded")
	for _, s := range []*Scheduler{nil, NewScheduler(4)} {
		var ran atomic.Int64
		results, err := RunJobs(context.Background(), s, 16, func(_ context.Context, i int) (int, error) {
			ran.Add(1)
			switch i {
			case 1:
				return 0, boom1
			case 5:
				return 0, boom5
			}
			return i * i, nil
		})
		if n := ran.Load(); n != 16 {
			t.Errorf("ran %d of 16 jobs; failures must not stop siblings", n)
		}
		if !errors.Is(err, boom1) || !errors.Is(err, boom5) {
			t.Fatalf("err = %v, want both cell errors joined", err)
		}
		if !strings.Contains(err.Error(), "job 1:") || !strings.Contains(err.Error(), "job 5:") {
			t.Errorf("err = %v, want errors tagged with their job index", err)
		}
		if results[3] != 9 || results[15] != 225 {
			t.Errorf("successful results lost alongside the failures: %v", results)
		}
	}
}

// TestRunJobsRecoversPanics: a panicking cell becomes that cell's
// error, not a process crash.
func TestRunJobsRecoversPanics(t *testing.T) {
	for _, s := range []*Scheduler{nil, NewScheduler(2)} {
		results, err := RunJobs(context.Background(), s, 4, func(_ context.Context, i int) (int, error) {
			if i == 2 {
				panic("cell blew up")
			}
			return i, nil
		})
		if err == nil || !strings.Contains(err.Error(), "job 2:") {
			t.Fatalf("err = %v, want the recovered panic tagged job 2", err)
		}
		var pe *resilience.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("err = %v, want a resilience.PanicError with the stack", err)
		}
		if results[3] != 3 {
			t.Errorf("sibling results lost after the panic: %v", results)
		}
	}
}

func TestRunJobsCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunJobs(ctx, NewScheduler(2), 8, func(ctx context.Context, i int) (int, error) {
		return 0, ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// stripTiming zeroes the fields that legitimately vary between a
// sequential and a concurrent run (wall-clock measurements).
func stripTiming(vs []VersionAccuracy) []VersionAccuracy {
	out := append([]VersionAccuracy(nil), vs...)
	for i := range out {
		out[i].SimMicros = 0
	}
	return out
}

// TestFigure2JobsDeterminism: running the per-version cells concurrently
// must give byte-for-byte the same accuracy numbers as sequentially —
// seeds derive from the options, never from scheduling order.
func TestFigure2JobsDeterminism(t *testing.T) {
	seq, err := Figure2(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	par := tiny()
	par.Jobs = 4
	got, err := Figure2(context.Background(), par)
	if err != nil {
		t.Fatal(err)
	}
	if got.Best != seq.Best {
		t.Errorf("best version differs: %q vs %q", got.Best, seq.Best)
	}
	a, b := stripTiming(seq.Versions), stripTiming(got.Versions)
	if len(a) != len(b) {
		t.Fatalf("version counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("version %d differs:\nsequential: %+v\nconcurrent: %+v", i, a[i], b[i])
		}
	}
}

// TestFigure2CacheDeterminism: attaching a shared evaluation cache must
// not change the results either, and the overlapping configurations
// (versions × restarts revisiting points) must actually produce hits.
func TestFigure2CacheDeterminism(t *testing.T) {
	seq, err := Figure2(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	co := tiny()
	co.Jobs = 4
	co.Cache = cache.New(nil)
	got, err := Figure2(context.Background(), co)
	if err != nil {
		t.Fatal(err)
	}
	a, b := stripTiming(seq.Versions), stripTiming(got.Versions)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("version %d differs with cache:\nuncached: %+v\ncached:   %+v", i, a[i], b[i])
		}
	}
	// A second run over the same options replays entirely from cache.
	if _, err := Figure2(context.Background(), co); err != nil {
		t.Fatal(err)
	}
	if st := co.Cache.Stats(); st.Hits == 0 {
		t.Errorf("no cache hits across repeated Figure2 runs: %+v", st)
	}
}
