package experiments

import (
	"context"
	"testing"
)

// TestFaultsDriver: every fault-rate row must complete its full budget
// (the fault tolerance absorbing the injected failures), the recovery
// counters must reconcile with the injection log, and the zero-rate row
// must be fault-free.
func TestFaultsDriver(t *testing.T) {
	o := tiny()
	o.MaxEvals = 24
	res, err := Faults(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(faultRates) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(faultRates))
	}
	for _, row := range res.Rows {
		if row.Evaluations != o.MaxEvals {
			t.Errorf("rate %g: %d evaluations, want the full %d", row.Rate, row.Evaluations, o.MaxEvals)
		}
		if row.PanicsRecovered != row.Injected.Panics {
			t.Errorf("rate %g: recovered %d panics, injector logged %d", row.Rate, row.PanicsRecovered, row.Injected.Panics)
		}
		if row.Timeouts != row.Injected.Hangs {
			t.Errorf("rate %g: %d timeouts, injector logged %d hangs", row.Rate, row.Timeouts, row.Injected.Hangs)
		}
		if want := row.Injected.Transients + row.Injected.Hangs; row.Retries != want {
			t.Errorf("rate %g: %d retries, want transients+hangs = %d", row.Rate, row.Retries, want)
		}
		if row.CalibError < 0 {
			t.Errorf("rate %g: negative calibration error %v", row.Rate, row.CalibError)
		}
	}
	if z := res.Rows[0]; z.Rate != 0 || z.Injected.Total() != 0 {
		t.Errorf("zero-rate row injected faults: %+v", z.Injected)
	}
	if res.Rows[3].Injected.Total() == 0 {
		t.Error("20%-rate row injected nothing; rates are not wired through")
	}
}
