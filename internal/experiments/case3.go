package experiments

import (
	"context"
	"fmt"

	"simcal/internal/batch"
	"simcal/internal/stats"
)

// CaseStudy3Result compares the calibrated batch-scheduling simulator
// versions — the methodology applied to the paper's announced future-work
// domain (Alea/Batsim-style batch scheduling with PWA workloads).
type CaseStudy3Result struct {
	Versions []VersionAccuracy
	Best     string
}

// CaseStudy3 generates a PWA-style ground-truth job log on the reference
// EASY cluster, calibrates all four simulator versions, and reports the
// percent relative error of per-job turnaround times.
func CaseStudy3(ctx context.Context, o Options) (*CaseStudy3Result, error) {
	spec := batch.WorkloadSpec{Jobs: 80, Procs: 64, ArrivalRate: 0.03, Seed: o.Seed + 100}
	gt, err := batch.GenerateGroundTruth(spec, o.Reps, o.Seed)
	if err != nil {
		return nil, err
	}
	versions := batch.AllVersions()
	vas, err := RunJobsLogged(ctx, o.sched(), o.RunLog, "casestudy3", len(versions), func(ctx context.Context, i int) (VersionAccuracy, error) {
		v := versions[i]
		r, err := o.calibrateBest(ctx, v.Space(), batch.Evaluator(v, gt), algorithms()[1],
			o.Seed, o.cacheKey("case3/batch/"+v.Name()))
		if err != nil {
			return VersionAccuracy{}, fmt.Errorf("casestudy3 %s: %w", v.Name(), err)
		}
		cfg := v.DecodeConfig(r.Best.Point, gt.Procs)
		sim, err := batch.Simulate(v.Policy, cfg, gt.Jobs)
		if err != nil {
			return VersionAccuracy{}, err
		}
		var errs []float64
		for _, j := range gt.Jobs {
			errs = append(errs, 100*stats.RelError(gt.MeanTurnaround[j.ID], sim.Ends[j.ID]-j.Submit))
		}
		return VersionAccuracy{
			Version:   v.Name(),
			AvgError:  stats.Mean(errs),
			MinError:  stats.Min(errs),
			MaxError:  stats.Max(errs),
			TrainLoss: r.Best.Loss,
			Params:    v.Space().Dim(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &CaseStudy3Result{}
	bestAvg := -1.0
	for _, va := range vas {
		res.Versions = append(res.Versions, va)
		if bestAvg < 0 || va.AvgError < bestAvg {
			bestAvg = va.AvgError
			res.Best = va.Version
		}
	}
	return res, nil
}
