package experiments

import (
	"context"
	"fmt"

	"simcal/internal/core"
	"simcal/internal/groundtruth"
	"simcal/internal/loss"
	"simcal/internal/opt"
	"simcal/internal/wfsim"
)

// AblationAlgResult compares every calibration algorithm at an equal
// budget on the same problem — the evidence behind the paper's Section 4
// statements that GRID and GRAD "performed poorly in preliminary
// experiments" and that "all versions of the BO algorithms perform
// almost identically".
type AblationAlgResult struct {
	// Losses maps algorithm name → best loss after the budget.
	Losses map[string]float64
	// Order lists algorithm names in run order.
	Order []string
	// BOSpread is max/min best loss across the four BO variants.
	BOSpread float64
}

// AblationAlgorithms calibrates the highest-detail workflow simulator
// with all seven algorithms on real ground truth and compares the final
// losses.
func AblationAlgorithms(ctx context.Context, o Options) (*AblationAlgResult, error) {
	ds, err := trainingDataset(o)
	if err != nil {
		return nil, err
	}
	v := wfsim.HighestDetail
	ev := loss.WFEvaluator(v, loss.WFL1, ds)
	algs := []core.Algorithm{
		opt.Grid{}, opt.Random{}, opt.GradientDescent{},
		opt.NewBOGP(), opt.NewBORF(), opt.NewBOET(), opt.NewBOGBRT(),
	}
	// Every algorithm calibrates the same (simulator, loss, dataset)
	// configuration, so all cells share one cache key: with a cache
	// attached, an evaluation any algorithm has already paid for is free
	// to every other.
	losses, err := RunJobsLogged(ctx, o.sched(), o.RunLog, "ablation-alg", len(algs), func(ctx context.Context, i int) (float64, error) {
		alg := algs[i] // one instance per cell: algorithms may keep state
		cal := o.calibrator(v.Space(), ev, alg, o.Seed, o.cacheKey("ablation/wf/L1"))
		r, err := cal.Run(ctx)
		if err != nil {
			return 0, fmt.Errorf("ablation %s: %w", alg.Name(), err)
		}
		return r.Best.Loss, nil
	})
	if err != nil {
		return nil, err
	}
	out := &AblationAlgResult{Losses: make(map[string]float64)}
	boMin, boMax := -1.0, -1.0
	for i, alg := range algs {
		l := losses[i]
		out.Order = append(out.Order, alg.Name())
		out.Losses[alg.Name()] = l
		if len(alg.Name()) > 3 && alg.Name()[:3] == "BO-" {
			if boMin < 0 || l < boMin {
				boMin = l
			}
			if l > boMax {
				boMax = l
			}
		}
	}
	if boMin > 0 {
		out.BOSpread = boMax / boMin
	}
	return out, nil
}

// AblationBudgetResult traces how the achievable accuracy scales with
// the calibration budget — the justification for the paper's fixed
// time-budget methodology step.
type AblationBudgetResult struct {
	// Budgets lists the evaluation budgets tried, ascending.
	Budgets []int
	// Losses[i] is the best loss achieved within Budgets[i].
	Losses []float64
}

// AblationBudget calibrates the highest-detail workflow simulator at a
// range of budgets with the paper's selected algorithm/loss pair.
func AblationBudget(ctx context.Context, o Options) (*AblationBudgetResult, error) {
	ds, err := trainingDataset(o)
	if err != nil {
		return nil, err
	}
	v := wfsim.HighestDetail
	ev := loss.WFEvaluator(v, loss.WFL1, ds)
	budgets := []int{o.MaxEvals / 8, o.MaxEvals / 4, o.MaxEvals / 2, o.MaxEvals}
	out := &AblationBudgetResult{}
	for _, b := range budgets {
		if b < 8 {
			continue
		}
		oo := o
		oo.MaxEvals = b
		cal := oo.calibrator(v.Space(), ev, opt.NewBOGP(), o.Seed, o.cacheKey("ablation/wf/L1"))
		r, err := cal.Run(ctx)
		if err != nil {
			return nil, fmt.Errorf("ablation budget %d: %w", b, err)
		}
		out.Budgets = append(out.Budgets, b)
		out.Losses = append(out.Losses, r.Best.Loss)
	}
	if len(out.Budgets) == 0 {
		return nil, fmt.Errorf("ablation budget: MaxEvals %d too small", o.MaxEvals)
	}
	return out, nil
}

// AblationStorageValueResult quantifies what the all-nodes storage level
// of detail buys on data-heavy vs data-free workloads — the design-
// choice ablation DESIGN.md calls out for case study #1.
type AblationStorageValueResult struct {
	// DataHeavy and DataFree report the avg makespan error (%) of the
	// submit-only vs all-nodes storage versions on each workload class.
	DataHeavySubmitOnly, DataHeavyAllNodes float64
	DataFreeSubmitOnly, DataFreeAllNodes   float64
}

// AblationStorageValue calibrates the one-link/htcondor simulator with
// both storage options on data-heavy and data-free ground truth.
func AblationStorageValue(ctx context.Context, o Options) (*AblationStorageValueResult, error) {
	mk := func(footIdx []int) (*groundtruth.WFDataset, error) {
		return groundtruth.GenerateWorkflowData(groundtruth.WFOptions{
			Apps:    o.WFApps[:1],
			SizeIdx: o.WFSizeIdx, WorkIdx: o.WFWorkIdx, FootIdx: footIdx,
			Workers: defaultWorkers(o)[:1], Reps: o.Reps, Seed: o.Seed,
		})
	}
	foots := wfFootprints(o)
	heavy, err := mk([]int{foots[len(foots)-1]})
	if err != nil {
		return nil, err
	}
	free, err := mk([]int{foots[0]})
	if err != nil {
		return nil, err
	}
	combos := []struct {
		storage wfsim.StorageOption
		ds      *groundtruth.WFDataset
		dsKey   string
	}{
		{wfsim.SubmitOnly, heavy, "storage-heavy"},
		{wfsim.AllNodes, heavy, "storage-heavy"},
		{wfsim.SubmitOnly, free, "storage-free"},
		{wfsim.AllNodes, free, "storage-free"},
	}
	errsOut, err := RunJobsLogged(ctx, o.sched(), o.RunLog, "ablation-storage", len(combos), func(ctx context.Context, i int) (float64, error) {
		c := combos[i]
		v := wfsim.Version{Network: wfsim.OneLink, Storage: c.storage, Compute: wfsim.HTCondor}
		va, err := calibrateAndTestWF(ctx, o, v, c.ds, c.ds, c.dsKey)
		if err != nil {
			return 0, err
		}
		return va.AvgError, nil
	})
	if err != nil {
		return nil, err
	}
	out := &AblationStorageValueResult{
		DataHeavySubmitOnly: errsOut[0],
		DataHeavyAllNodes:   errsOut[1],
		DataFreeSubmitOnly:  errsOut[2],
		DataFreeAllNodes:    errsOut[3],
	}
	return out, nil
}

// wfFootprints returns the footprint indices in effect for the options'
// first app.
func wfFootprints(o Options) []int {
	if o.WFFootIdx != nil {
		return o.WFFootIdx
	}
	n := 4 // Table 1 real apps have 4 footprints
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
