package experiments

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"simcal/internal/resilience"
)

// Scheduler is a bounded worker pool for running independent
// calibrations — the (LoD version × loss × algorithm) cells of the
// paper's evaluation — concurrently. One Scheduler is meant to be
// shared by every driver of an experiment run so the total calibration
// parallelism stays bounded regardless of how drivers nest their loops.
// The zero bound and a nil *Scheduler both mean sequential execution.
//
// Concurrency does not change results: every cell derives its own
// deterministic seed from the root seed (never from scheduling order),
// and RunJobs returns results in index order, so a parallel run is
// output-identical to a sequential one.
type Scheduler struct {
	sem chan struct{}
}

// NewScheduler returns a scheduler running at most jobs calibrations at
// once. jobs <= 1 returns nil, the sequential scheduler.
func NewScheduler(jobs int) *Scheduler {
	if jobs <= 1 {
		return nil
	}
	return &Scheduler{sem: make(chan struct{}, jobs)}
}

// RunJobs runs fn(ctx, i) for i in [0, n) under the scheduler's
// concurrency bound and returns the n results in index order. A nil
// scheduler runs the jobs sequentially in index order.
//
// Failures do not cancel siblings: every cell represents an independent
// calibration whose result is worth keeping (and, with a RunLog,
// checkpointing), so one broken cell must not discard hours of sibling
// work. Every job runs to completion; a panic inside a job is recovered
// and converted to that job's error. RunJobs then returns the results
// slice — successful entries filled in, failed indices left at the zero
// value — together with the errors.Join of every per-job failure, each
// wrapped with its index. Only parent-context cancellation stops jobs
// from starting.
func RunJobs[T any](ctx context.Context, s *Scheduler, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	errs := make([]error, n)
	run := func(i int) {
		r, err := safeJob(ctx, i, fn)
		if err != nil {
			errs[i] = fmt.Errorf("job %d: %w", i, err)
			return
		}
		results[i] = r
	}
	if s == nil {
		for i := 0; i < n && ctx.Err() == nil; i++ {
			run(i)
		}
	} else {
		var wg sync.WaitGroup
	acquire:
		for i := 0; i < n; i++ {
			select {
			case s.sem <- struct{}{}:
			case <-ctx.Done():
				break acquire
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-s.sem }()
				run(i)
			}(i)
		}
		wg.Wait()
	}
	all := errs
	if err := ctx.Err(); err != nil {
		// One entry for the abort itself; jobs that never started carry
		// no per-index error.
		all = append(append([]error(nil), errs...), err)
	}
	if err := errors.Join(all...); err != nil {
		return results, err
	}
	return results, nil
}

// safeJob runs one job under panic isolation: a panicking cell becomes
// that cell's error (with the stack attached via resilience.PanicError)
// instead of crashing the whole experiment grid.
func safeJob[T any](ctx context.Context, i int, fn func(ctx context.Context, i int) (T, error)) (v T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = resilience.NewPanicError(r, nil)
		}
	}()
	return fn(ctx, i)
}

// RunJobsLogged is RunJobs with cell-level checkpointing: jobs whose
// results are already recorded in the RunLog (under scope) are served
// from it without running fn, and every fresh success is appended to
// the log before RunJobsLogged returns. Killing a grid run and
// re-running it with the same log therefore recomputes only the
// unfinished cells — and, because every cell's seed derives from the
// root seed rather than from scheduling order, the resumed grid is
// output-identical to an uninterrupted one. A nil log degrades to plain
// RunJobs.
func RunJobsLogged[T any](ctx context.Context, s *Scheduler, l *RunLog, scope string, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	if l == nil {
		return RunJobs(ctx, s, n, fn)
	}
	return RunJobs(ctx, s, n, func(ctx context.Context, i int) (T, error) {
		var cached T
		if l.Lookup(scope, i, &cached) {
			return cached, nil
		}
		v, err := fn(ctx, i)
		if err != nil {
			return v, err
		}
		if err := l.Store(scope, i, v); err != nil {
			return v, fmt.Errorf("run log: %w", err)
		}
		return v, nil
	})
}
