package experiments

import (
	"context"
	"errors"
	"sync"
)

// Scheduler is a bounded worker pool for running independent
// calibrations — the (LoD version × loss × algorithm) cells of the
// paper's evaluation — concurrently. One Scheduler is meant to be
// shared by every driver of an experiment run so the total calibration
// parallelism stays bounded regardless of how drivers nest their loops.
// The zero bound and a nil *Scheduler both mean sequential execution.
//
// Concurrency does not change results: every cell derives its own
// deterministic seed from the root seed (never from scheduling order),
// and RunJobs returns results in index order, so a parallel run is
// output-identical to a sequential one.
type Scheduler struct {
	sem chan struct{}
}

// NewScheduler returns a scheduler running at most jobs calibrations at
// once. jobs <= 1 returns nil, the sequential scheduler.
func NewScheduler(jobs int) *Scheduler {
	if jobs <= 1 {
		return nil
	}
	return &Scheduler{sem: make(chan struct{}, jobs)}
}

// RunJobs runs fn(ctx, i) for i in [0, n) under the scheduler's
// concurrency bound and returns the n results in index order. A nil
// scheduler runs the jobs sequentially in index order. The first
// failure cancels the context passed to still-running siblings;
// RunJobs then reports that failure — preferring a sibling's real
// error over the context.Canceled the cancellation itself induces —
// after every started job has returned.
func RunJobs[T any](ctx context.Context, s *Scheduler, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	results := make([]T, n)
	if s == nil {
		for i := 0; i < n; i++ {
			r, err := fn(ctx, i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		select {
		case s.sem <- struct{}{}:
		case <-ctx.Done():
			errs[i] = ctx.Err()
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-s.sem }()
			r, err := fn(ctx, i)
			if err != nil {
				errs[i] = err
				cancel()
				return
			}
			results[i] = r
		}(i)
	}
	wg.Wait()
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	if first != nil {
		return nil, first
	}
	return results, nil
}
