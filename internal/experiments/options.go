// Package experiments implements one driver per table and figure of the
// paper's evaluation (see DESIGN.md's per-experiment index). Every driver
// takes an Options value that scales the experiment: the defaults run in
// seconds to minutes on a laptop; Full() approaches the paper's scale
// (which used 24–48 h calibration budgets on a 48-core node).
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"simcal/internal/cache"
	"simcal/internal/core"
	"simcal/internal/opt"
	"simcal/internal/resilience"
	"simcal/internal/simspec"
	"simcal/internal/wfgen"
)

// Options scales every experiment.
type Options struct {
	// Seed drives all randomness (data generation and search).
	Seed int64
	// Workers is the loss-evaluation parallelism (default GOMAXPROCS).
	Workers int
	// MaxEvals bounds each calibration's loss evaluations — the budget
	// proxy used instead of the paper's wall-clock 24 h/48 h budgets so
	// results stay machine-independent. Budget, when non-zero, applies a
	// wall-clock cap too.
	MaxEvals int
	Budget   time.Duration
	// Restarts re-runs each version calibration with distinct seeds and
	// keeps the lowest training loss, the standard defense against
	// unlucky search trajectories at small budgets. Defaults to 1.
	Restarts int
	// TrainingBudget is the wall-clock budget per calibration in the
	// Figure 3 training-cost study. Figure 3 *must* use a time budget
	// rather than an evaluation count: the paper's effect — larger
	// training datasets can be detrimental — exists precisely because
	// costlier loss evaluations buy fewer optimizer iterations within a
	// fixed time. Defaults to 3 s (the paper used 24 h).
	TrainingBudget time.Duration

	// Case study #1 scale.
	WFApps    []wfgen.App
	WFSizeIdx []int // indices into Table1 sizes (default {0,1,2,3,4})
	WFWorkIdx []int
	WFFootIdx []int
	WFWorkers []int // worker-count grid (default {1,2,4,6})
	Reps      int   // ground-truth repetitions (default 5)

	// Case study #2 scale.
	MPINodes    []int     // node counts standing in for 128/256/512
	MPIMsgSizes []float64 // message sizes (default 2^10…2^22)
	MPIRounds   int       // benchmark rounds per execution

	// Observer, when non-nil, receives lifecycle callbacks from every
	// calibration an experiment runs (see core.Observer and
	// core.NewObsObserver). Nil disables instrumentation.
	Observer core.Observer

	// Jobs is the number of independent calibrations (LoD version × loss
	// × algorithm cells, restarts) run concurrently by the drivers.
	// Values <= 1 run sequentially. Results are identical either way:
	// every cell's seed derives from Seed, never from scheduling order.
	Jobs int
	// Cache, when non-nil, memoizes loss evaluations across every
	// calibration an experiment runs (see the cache package). Each
	// driver keys the cache by its (simulator version, loss, dataset)
	// configuration, so restarts and repeated algorithms share
	// simulations while distinct configurations stay apart.
	Cache *cache.Cache

	// Resilience, when non-nil, runs every loss evaluation of every
	// calibration under the fault-tolerant executor (timeouts, retries,
	// circuit breaking — see resilience.Policy).
	Resilience *resilience.Policy

	// RunLog, when non-nil, checkpoints completed grid cells so a
	// killed experiment run resumes only its unfinished cells (see
	// OpenRunLog). Drivers that fan out over cells consult it; resumed
	// results are identical to uninterrupted ones because cell seeds
	// derive from Seed, never from scheduling order.
	RunLog *RunLog

	// Remote, when non-nil, supplies the loss evaluator for a simulator
	// spec instead of building it in-process — the hook the distributed
	// evaluation plane plugs in (a dist.Coordinator's Evaluator). The
	// spec-aware drivers (Table3, Figure1, Figure4) route their
	// evaluations through it; the remaining drivers always evaluate
	// locally. Because specs are self-describing and workers rebuild
	// simulators from the same code, results are bitwise identical to
	// local evaluation.
	Remote func(spec simspec.Spec) (core.Simulator, error)
}

// simulator resolves the loss evaluator for one calibration cell: the
// Remote hook when set, otherwise the lazily built local evaluator.
func (o Options) simulator(sp simspec.Spec, local func() (core.Simulator, error)) (core.Simulator, error) {
	if o.Remote != nil {
		return o.Remote(sp)
	}
	return local()
}

// sched returns the experiment-wide scheduler implied by Jobs (nil for
// sequential execution).
func (o Options) sched() *Scheduler { return NewScheduler(o.Jobs) }

// cacheKey builds the evaluation-cache identity for one (simulator
// version, loss, dataset) configuration. o.Seed participates because
// every ground-truth dataset is generated from it. The scale fields
// (WFApps, Reps, MPI grids, …) do not: a Cache must not be shared
// across differently scaled Options values.
func (o Options) cacheKey(config string) string {
	return fmt.Sprintf("%s#seed=%d", config, o.Seed)
}

// Default returns the fast configuration used by the benchmark harness:
// reduced workload grids and evaluation budgets that preserve every
// qualitative comparison the paper makes.
func Default() Options {
	return Options{
		Seed:           1,
		Workers:        runtime.GOMAXPROCS(0),
		MaxEvals:       300,
		Restarts:       3,
		TrainingBudget: 3 * time.Second,
		WFApps:         []wfgen.App{wfgen.Epigenomics, wfgen.Seismology},
		WFSizeIdx:      []int{0, 1, 2},
		WFWorkIdx:      []int{0, 3},
		WFFootIdx:      []int{0, 1, 2},
		WFWorkers:      []int{1, 2, 4},
		Reps:           3,
		MPINodes:       []int{8, 16, 32},
		MPIMsgSizes: []float64{
			1 << 10, 1 << 13, 1 << 16, 1 << 19, 1 << 22,
		},
		MPIRounds: 2,
	}
}

// Full returns the paper-scale configuration: the complete Table 1 grid,
// 128/256/512-node MPI runs, the full message-size sweep, five
// repetitions, and a much larger evaluation budget. Expect hours.
func Full() Options {
	o := Default()
	o.MaxEvals = 2000
	o.TrainingBudget = 60 * time.Second
	o.WFApps = wfgen.RealApps
	o.WFSizeIdx = nil // full
	o.WFWorkIdx = nil
	o.WFFootIdx = nil
	o.WFWorkers = []int{1, 2, 4, 6}
	o.Reps = 5
	o.MPINodes = []int{128, 256, 512}
	o.MPIMsgSizes = nil // full sweep
	o.MPIRounds = 4
	return o
}

// calibrator assembles a core.Calibrator from the options. key
// identifies the (simulator version, loss, dataset) configuration for
// the evaluation cache; it is ignored when o.Cache is nil.
func (o Options) calibrator(space core.Space, sim core.Simulator, alg core.Algorithm, seed int64, key string) *core.Calibrator {
	return &core.Calibrator{
		Space:          space,
		Simulator:      sim,
		Algorithm:      alg,
		Budget:         o.Budget,
		MaxEvaluations: o.MaxEvals,
		Workers:        o.Workers,
		Seed:           seed,
		Observer:       o.Observer,
		Cache:          o.Cache,
		CacheKey:       key,
		Resilience:     o.Resilience,
	}
}

// calibrateBest runs the calibration o.Restarts times with distinct
// seeds and returns the result with the lowest training loss. The
// restarts run sequentially: drivers parallelize at the cell level
// (one RunJobs per driver loop), and nesting a second level inside a
// cell would either oversubscribe or, on a shared pool, deadlock.
// With a cache the restarts share memoized evaluations anyway.
func (o Options) calibrateBest(ctx context.Context, space core.Space, sim core.Simulator, alg core.Algorithm, seed int64, key string) (*core.Result, error) {
	restarts := o.Restarts
	if restarts < 1 {
		restarts = 1
	}
	var best *core.Result
	for i := 0; i < restarts; i++ {
		r, err := o.calibrator(space, sim, alg, seed+int64(1000*i), key).Run(ctx)
		if err != nil {
			return nil, err
		}
		if best == nil || r.Best.Loss < best.Best.Loss {
			best = r
		}
	}
	return best, nil
}

// algorithms returns the algorithm set compared in Tables 3 and 5 (the
// paper omits GRID and GRAD from the result tables after preliminary
// experiments showed them uncompetitive; they remain available in opt).
func algorithms() []core.Algorithm {
	return []core.Algorithm{opt.Random{}, opt.NewBOGP()}
}
