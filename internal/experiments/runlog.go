package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
)

// runLogKind tags the header line of a run-log file.
const runLogKind = "simcal-run-log"

// RunLog is an append-only JSONL checkpoint of completed experiment
// cells. The first line is a header carrying a caller-supplied meta
// string (the experiment configuration fingerprint); every further line
// records one finished cell as {"cell": "<scope>/<index>", "value": …}.
//
// Appends are atomic at line granularity: each Store writes a complete
// line and fsyncs before returning, and OpenRunLog truncates a torn
// trailing line (the footprint of a kill mid-write), so the log is
// always resumable after a crash. A RunLog is safe for concurrent use.
type RunLog struct {
	mu   sync.Mutex
	path string
	f    *os.File
	done map[string]json.RawMessage
}

type runLogHeader struct {
	Kind string `json:"kind"`
	Meta string `json:"meta"`
}

type runLogCell struct {
	Cell  string          `json:"cell"`
	Value json.RawMessage `json:"value"`
}

// OpenRunLog opens (or creates) the run log at path. meta fingerprints
// the experiment configuration; reopening a log written under a
// different meta fails, because cells computed under different options
// must never be served as resume data. A torn trailing line — the
// usual residue of killing the process mid-append — is truncated away;
// any other corruption is an error.
func OpenRunLog(path, meta string) (*RunLog, error) {
	l := &RunLog{path: path, done: make(map[string]json.RawMessage)}
	existing, err := os.ReadFile(path)
	switch {
	case os.IsNotExist(err):
		f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
		if err != nil {
			return nil, err
		}
		hdr, _ := json.Marshal(runLogHeader{Kind: runLogKind, Meta: meta})
		if _, err := f.Write(append(hdr, '\n')); err != nil {
			f.Close()
			return nil, err
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		l.f = f
		return l, nil
	case err != nil:
		return nil, err
	}

	good, err := l.load(existing, meta)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	// Drop the torn tail (if any) and position at the last good line.
	if err := f.Truncate(good); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(good, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	l.f = f
	return l, nil
}

// load parses the existing log bytes, fills l.done, and returns the
// offset just past the last intact line. The final line may be torn —
// unterminated, or terminated but unparseable — and is silently
// dropped; a bad line anywhere earlier is corruption (appends are
// line-atomic, so a crash can only damage the tail).
func (l *RunLog) load(data []byte, meta string) (good int64, err error) {
	var lines [][]byte
	var ends []int64 // offset just past each complete line
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn trailing line
		}
		lines = append(lines, data[off:off+nl])
		ends = append(ends, int64(off+nl+1))
		off += nl + 1
	}
	if len(lines) == 0 {
		return 0, fmt.Errorf("experiments: run log %s: missing header", l.path)
	}
	var hdr runLogHeader
	if err := json.Unmarshal(lines[0], &hdr); err != nil {
		return 0, fmt.Errorf("experiments: run log %s: corrupt header: %w", l.path, err)
	}
	if hdr.Kind != runLogKind {
		return 0, fmt.Errorf("experiments: %s is not a run log (kind %q)", l.path, hdr.Kind)
	}
	if hdr.Meta != meta {
		return 0, fmt.Errorf("experiments: run log %s was written for configuration %q, not %q — delete it or point -checkpoint elsewhere", l.path, hdr.Meta, meta)
	}
	good = ends[0]
	for k := 1; k < len(lines); k++ {
		var cell runLogCell
		if err := json.Unmarshal(lines[k], &cell); err != nil || cell.Cell == "" {
			if k == len(lines)-1 {
				return good, nil // torn tail that kept its newline
			}
			return 0, fmt.Errorf("experiments: run log %s: corrupt entry at line %d", l.path, k+1)
		}
		l.done[cell.Cell] = append(json.RawMessage(nil), cell.Value...)
		good = ends[k]
	}
	return good, nil
}

// Lookup decodes the recorded result of cell (scope, i) into out and
// reports whether it was found. A recorded value that no longer decodes
// into out's type counts as a miss (the cell is recomputed).
func (l *RunLog) Lookup(scope string, i int, out any) bool {
	l.mu.Lock()
	raw, ok := l.done[cellKey(scope, i)]
	l.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Store appends the result of cell (scope, i) and fsyncs. Storing a
// cell twice keeps the latest value.
func (l *RunLog) Store(scope string, i int, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return err
	}
	line, err := json.Marshal(runLogCell{Cell: cellKey(scope, i), Value: raw})
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("experiments: run log %s is closed", l.path)
	}
	if _, err := l.f.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return err
	}
	l.done[cellKey(scope, i)] = raw
	return nil
}

// Len reports how many cells the log holds.
func (l *RunLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.done)
}

// Close closes the underlying file. Lookup keeps working on the
// in-memory index; Store fails.
func (l *RunLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}

func cellKey(scope string, i int) string { return fmt.Sprintf("%s/%d", scope, i) }
