package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"simcal/internal/wfgen"
)

// tiny returns the smallest meaningful configuration so the integration
// tests complete in seconds.
func tiny() Options {
	o := Default()
	o.MaxEvals = 12
	o.Restarts = 1
	o.TrainingBudget = 250 * time.Millisecond
	o.Workers = 2
	o.WFApps = []wfgen.App{wfgen.Forkjoin}
	o.WFSizeIdx = []int{0, 1}
	o.WFWorkIdx = []int{1}
	o.WFFootIdx = []int{1}
	o.WFWorkers = []int{1, 2}
	o.Reps = 2
	o.MPINodes = []int{2, 4}
	o.MPIMsgSizes = []float64{1 << 12, 1 << 18}
	o.MPIRounds = 1
	return o
}

// tinyReal swaps in a real application (needed by drivers that exclude
// synthetic patterns).
func tinyReal() Options {
	o := tiny()
	o.WFApps = []wfgen.App{wfgen.Epigenomics}
	return o
}

func TestTable1Rows(t *testing.T) {
	rows := Table1Rows()
	if len(rows) != 7 {
		t.Fatalf("rows = %d, want 7", len(rows))
	}
	for _, r := range rows {
		if !r.Generated {
			t.Errorf("%s: generation failed for some size", r.App)
		}
	}
}

func TestTable2And4Rows(t *testing.T) {
	t2 := Table2Rows()
	if len(t2) != 12 {
		t.Fatalf("table2 rows = %d, want 12", len(t2))
	}
	minP, maxP := t2[0].Params, t2[0].Params
	for _, r := range t2 {
		if r.Params < minP {
			minP = r.Params
		}
		if r.Params > maxP {
			maxP = r.Params
		}
	}
	if minP != 5 || maxP != 10 {
		t.Errorf("table2 param range = [%d,%d], want [5,10]", minP, maxP)
	}
	t4 := Table4Rows()
	if len(t4) != 16 {
		t.Fatalf("table4 rows = %d, want 16", len(t4))
	}
}

func TestTable3Runs(t *testing.T) {
	res, err := Table3(context.Background(), tinyReal())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Algorithms) != 2 || len(res.Losses) != 6 {
		t.Fatalf("shape: %d algs × %d losses", len(res.Algorithms), len(res.Losses))
	}
	for _, a := range res.Algorithms {
		for _, l := range res.Losses {
			if res.Errors[a][l] < 0 {
				t.Errorf("negative calibration error for %s/%s", a, l)
			}
		}
	}
	if res.WinnerAlg == "" || res.WinnerLoss == "" {
		t.Error("no winner selected")
	}
}

func TestFigure1Runs(t *testing.T) {
	res, err := Figure1(context.Background(), tinyReal())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no convergence points")
	}
	for i := 1; i < len(res.Points); i++ {
		if res.Points[i].Loss > res.Points[i-1].Loss {
			t.Fatal("convergence curve not monotone")
		}
	}
}

func TestFigure2Runs(t *testing.T) {
	res, err := Figure2(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 12 {
		t.Fatalf("versions = %d, want 12", len(res.Versions))
	}
	for _, v := range res.Versions {
		if v.AvgError < v.MinError || v.AvgError > v.MaxError {
			t.Errorf("%s: avg %.1f outside [min %.1f, max %.1f]", v.Version, v.AvgError, v.MinError, v.MaxError)
		}
	}
	if res.Best == "" {
		t.Error("no best version")
	}
}

func TestBaseline1SpecWorseThanCalibrated(t *testing.T) {
	o := tinyReal()
	o.MaxEvals = 32
	res, err := Baseline1(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecError <= 0 {
		t.Error("spec-based error should be positive")
	}
	if res.SpecError < res.CalibratedError {
		t.Errorf("spec-based error (%.1f%%) below calibrated (%.1f%%) — calibration adds nothing?", res.SpecError, res.CalibratedError)
	}
	if len(res.PerApp) == 0 {
		t.Error("no per-app breakdown")
	}
}

func TestFigure3Runs(t *testing.T) {
	o := tinyReal()
	o.MaxEvals = 8
	res, err := Figure3(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	// 2 worker counts × 2 sizes = 4 single + 3 rect options.
	if len(res.Points) != 7 {
		t.Fatalf("points = %d, want 7", len(res.Points))
	}
	refs := 0
	for _, p := range res.Points {
		if p.Cost <= 0 {
			t.Error("non-positive training cost")
		}
		if p.Reference {
			refs++
		}
	}
	if refs != 1 {
		t.Errorf("reference points = %d, want 1", refs)
	}
}

func TestSection55Runs(t *testing.T) {
	o := tinyReal()
	o.MaxEvals = 8
	res, err := Section55(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalRestricted == 0 {
		t.Error("no restricted options evaluated")
	}
	if res.ChainLoss <= 0 || res.ForkjoinLoss <= 0 || res.BothLoss <= 0 {
		t.Error("synthetic-benchmark training losses should be positive")
	}
}

func TestTable5Runs(t *testing.T) {
	res, err := Table5(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Algorithms) != 2 || len(res.Losses) != 4 {
		t.Fatalf("shape: %d algs × %d losses", len(res.Algorithms), len(res.Losses))
	}
	if res.WinnerAlg == "" {
		t.Error("no winner")
	}
}

func TestFigure4Runs(t *testing.T) {
	res, err := Figure4(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) == 0 {
		t.Fatal("no points")
	}
}

func TestFigure5Runs(t *testing.T) {
	o := tiny()
	o.MaxEvals = 8
	res, err := Figure5(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 16 {
		t.Fatalf("versions = %d, want 16", len(res.Versions))
	}
}

func TestBaseline2Runs(t *testing.T) {
	o := tiny()
	o.MaxEvals = 24
	res, err := Baseline2(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecError <= 0 {
		t.Error("spec error should be positive")
	}
	if len(res.PerBenchmark) != 3 {
		t.Errorf("per-benchmark entries = %d, want 3", len(res.PerBenchmark))
	}
}

func TestSection65Runs(t *testing.T) {
	o := tiny()
	o.MaxEvals = 10
	res, err := Section65(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.StencilFromP2P <= 0 || res.StencilNative <= 0 {
		t.Error("stencil errors should be positive")
	}
	if len(res.ScaleErrors) != 2 {
		t.Errorf("scale errors = %d, want 2", len(res.ScaleErrors))
	}
	if res.TrainNodes != 2 {
		t.Errorf("train nodes = %d, want 2", res.TrainNodes)
	}
}

func TestAblationAlgorithmsRuns(t *testing.T) {
	o := tinyReal()
	o.MaxEvals = 16
	res, err := AblationAlgorithms(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Order) != 7 {
		t.Fatalf("algorithms = %d, want 7", len(res.Order))
	}
	for name, l := range res.Losses {
		if l < 0 {
			t.Errorf("%s: negative loss", name)
		}
	}
	if res.BOSpread < 1 {
		t.Errorf("BOSpread = %v, want >= 1", res.BOSpread)
	}
}

func TestAblationBudgetRuns(t *testing.T) {
	o := tinyReal()
	o.MaxEvals = 64
	res, err := AblationBudget(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Budgets) < 3 {
		t.Fatalf("budgets = %d, want >= 3", len(res.Budgets))
	}
	// Larger budgets cannot end up worse (same seed → prefix property of
	// BO sampling does not strictly hold, but the loss at the largest
	// budget should not exceed the smallest by much; check weak
	// monotonicity of min over the curve instead).
	minLoss := res.Losses[0]
	for _, l := range res.Losses {
		if l < minLoss {
			minLoss = l
		}
	}
	if res.Losses[len(res.Losses)-1] > 10*minLoss && minLoss > 0 {
		t.Errorf("largest budget much worse than best: %v", res.Losses)
	}
}

func TestAblationBudgetRejectsTinyBudget(t *testing.T) {
	o := tinyReal()
	o.MaxEvals = 4
	if _, err := AblationBudget(context.Background(), o); err == nil {
		t.Error("tiny budget accepted")
	}
}

func TestAblationStorageValueRuns(t *testing.T) {
	o := tinyReal()
	o.MaxEvals = 16
	res, err := AblationStorageValue(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{res.DataHeavySubmitOnly, res.DataHeavyAllNodes, res.DataFreeSubmitOnly, res.DataFreeAllNodes} {
		if v < 0 {
			t.Errorf("negative error %v", v)
		}
	}
}

func TestSplitTrainTestDisjoint(t *testing.T) {
	o := tinyReal()
	full, err := fullDataset(o)
	if err != nil {
		t.Fatal(err)
	}
	train, test := splitTrainTest(full, o)
	if len(train.Groups) == 0 || len(test.Groups) == 0 {
		t.Fatalf("empty split: train=%d test=%d", len(train.Groups), len(test.Groups))
	}
	keys := map[string]bool{}
	for _, g := range train.Groups {
		keys[g.Key()] = true
	}
	for _, g := range test.Groups {
		if keys[g.Key()] {
			t.Errorf("group %s in both train and test", g.Key())
		}
	}
}

func TestFormatHelpers(t *testing.T) {
	tbl := FormatTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if !strings.Contains(tbl, "333") || !strings.Contains(tbl, "--") {
		t.Errorf("FormatTable output:\n%s", tbl)
	}
	m := map[string]map[string]float64{"RAND": {"L1": 1.5}}
	s := FormatMatrix("alg", []string{"RAND"}, []string{"L1"}, m)
	if !strings.Contains(s, "1.50") {
		t.Errorf("FormatMatrix output:\n%s", s)
	}
	va := FormatVersionAccuracy([]VersionAccuracy{{Version: "x", Params: 5, AvgError: 1, MinError: 0.5, MaxError: 2}})
	if !strings.Contains(va, "x") {
		t.Error("FormatVersionAccuracy missing version")
	}
	cv := FormatConvergence([]ConvergencePoint{{Evaluations: 1, Loss: 0.5}, {Evaluations: 2, Loss: 0.25}}, 10)
	if !strings.Contains(cv, "0.2500") {
		t.Error("FormatConvergence missing loss")
	}
	f3 := FormatFigure3(&Figure3Result{Points: []Figure3Point{{App: "a", Scheme: "single", Workers: 1, Tasks: 10, Cost: 5, TestLoss: 0.1, Reference: true}}})
	if !strings.Contains(f3, "single") || !strings.Contains(f3, "*") {
		t.Error("FormatFigure3 output wrong")
	}
}

func TestDefaultAndFullOptions(t *testing.T) {
	d := Default()
	if d.MaxEvals <= 0 || len(d.WFApps) == 0 || len(d.MPINodes) == 0 {
		t.Error("Default options incomplete")
	}
	f := Full()
	if f.MaxEvals <= d.MaxEvals {
		t.Error("Full should have a larger budget than Default")
	}
	if f.MPINodes[0] != 128 {
		t.Error("Full should use the paper's 128-node scale")
	}
}

func TestCaseStudy3Runs(t *testing.T) {
	o := tinyReal()
	o.MaxEvals = 20
	res, err := CaseStudy3(context.Background(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Versions) != 4 {
		t.Fatalf("versions = %d, want 4", len(res.Versions))
	}
	if res.Best == "" {
		t.Error("no best version")
	}
	// The EASY-with-overheads version (same policy and detail as the
	// reference) must never be the worst.
	worst := res.Versions[0]
	for _, v := range res.Versions {
		if v.AvgError > worst.AvgError {
			worst = v
		}
	}
	if worst.Version == "easy/with-overheads" {
		t.Errorf("reference-detail version is the worst (%v%%)", worst.AvgError)
	}
}
