package experiments

import (
	"context"
	"fmt"
	"time"

	"simcal/internal/core"
	"simcal/internal/faultsim"
	"simcal/internal/groundtruth"
	"simcal/internal/loss"
	"simcal/internal/obs"
	"simcal/internal/opt"
	"simcal/internal/resilience"
	"simcal/internal/wfsim"
)

// FaultsRow reports one calibration under an injected-fault regime.
type FaultsRow struct {
	// Rate is the total per-evaluation fault probability injected.
	Rate float64
	// CalibError is the percent relative L1 distance to the planted
	// calibration the faulty run still achieves.
	CalibError float64
	// Evaluations is how many loss evaluations the budget yielded.
	Evaluations int
	// Injected is the fault injector's own log.
	Injected faultsim.Counts
	// PanicsRecovered, Retries, and Timeouts are the runtime's recovery
	// counters (the eval_panics_recovered, eval_retries, and
	// eval_timeouts metrics); they reconcile with Injected.
	PanicsRecovered, Retries, Timeouts int64
}

// FaultsResult measures how calibration quality degrades as the
// simulator gets flakier — the robustness experiment behind the
// fault-tolerant runtime: with panic isolation, timeouts, and retries
// in place, moderate fault rates must cost accuracy gracefully rather
// than abort the run.
type FaultsResult struct {
	Rows []FaultsRow
}

// faultRates are the injected total fault probabilities swept by Faults.
var faultRates = []float64{0, 0.05, 0.10, 0.20}

// Faults runs the fault-injection sweep: plant a known calibration in
// the lowest-detail workflow simulator, then calibrate against it
// through a faultsim.Injector at increasing fault rates, under the
// resilience policy. Every row completes its full evaluation budget —
// the fault tolerance converts injected failures into retries or +Inf
// losses instead of crashes.
func Faults(ctx context.Context, o Options) (*FaultsResult, error) {
	v := wfsim.LowestDetail
	template, err := trainingDataset(o)
	if err != nil {
		return nil, err
	}
	planted := groundtruth.WorkflowTruthPoint(v)
	syn, err := groundtruth.SyntheticWorkflowData(v, planted, template)
	if err != nil {
		return nil, err
	}
	policy := o.Resilience
	if policy == nil {
		policy = &resilience.Policy{
			Timeout:     250 * time.Millisecond,
			MaxAttempts: 100, // transients must never exhaust into +Inf
			BaseDelay:   100 * time.Microsecond,
			MaxDelay:    5 * time.Millisecond,
		}
	}
	rows, err := RunJobsLogged(ctx, o.sched(), o.RunLog, "faults", len(faultRates), func(ctx context.Context, i int) (FaultsRow, error) {
		rate := faultRates[i]
		inj := faultsim.Wrap(loss.WFEvaluator(v, loss.WFL1, syn), faultsim.Config{
			Seed: o.Seed + int64(i+1),
			// Split the total rate over the fault kinds, weighted toward
			// the cheap ones (hangs cost a full timeout each).
			PanicRate:     rate * 0.30,
			TransientRate: rate * 0.40,
			NaNRate:       rate * 0.20,
			HangRate:      rate * 0.10,
		})
		// A dedicated registry per rate keeps the recovery counters
		// attributable to this row.
		reg := obs.NewRegistry()
		cal := &core.Calibrator{
			Space:          v.Space(),
			Simulator:      inj,
			Algorithm:      opt.Random{},
			Budget:         o.Budget,
			MaxEvaluations: o.MaxEvals,
			Workers:        o.Workers,
			Seed:           o.Seed + int64(100*(i+1)),
			Observer:       core.NewObsObserver(reg, nil),
			Resilience:     policy,
		}
		r, err := cal.Run(ctx)
		if err != nil {
			return FaultsRow{}, fmt.Errorf("faults rate=%g: %w", rate, err)
		}
		return FaultsRow{
			Rate:            rate,
			CalibError:      core.CalibrationError(v.Space(), r.Best.Point, planted),
			Evaluations:     r.Evaluations,
			Injected:        inj.Counts(),
			PanicsRecovered: reg.Counter("eval_panics_recovered").Value(),
			Retries:         reg.Counter("eval_retries").Value(),
			Timeouts:        reg.Counter("eval_timeouts").Value(),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &FaultsResult{Rows: rows}, nil
}
