package experiments

import (
	"context"
	"fmt"
	"time"

	"simcal/internal/core"
	"simcal/internal/groundtruth"
	"simcal/internal/loss"
	"simcal/internal/mpi"
	"simcal/internal/mpisim"
	"simcal/internal/simspec"
	"simcal/internal/stats"
)

// p2pBenchmarks are the training benchmarks of Section 6.4 (Stencil is
// held out for the generalization study).
var p2pBenchmarks = []mpi.Benchmark{mpi.PingPing, mpi.PingPong, mpi.BiRandom}

// mpiTrainData generates the (smallest-scale) MPI training dataset.
func mpiTrainData(o Options, benchmarks []mpi.Benchmark, nodes []int) (*groundtruth.MPIDataset, error) {
	return groundtruth.GenerateMPIData(groundtruth.MPIOptions{
		Benchmarks: benchmarks,
		Nodes:      nodes,
		MsgSizes:   o.MPIMsgSizes,
		Rounds:     o.MPIRounds,
		Reps:       o.Reps,
		Seed:       o.Seed,
	})
}

// Table5Result holds calibration error and average relative transfer-
// rate error for every algorithm × loss pair — the paper's Table 5.
type Table5Result struct {
	Losses     []string
	Algorithms []string
	// CalibErrors[alg][loss] is the calibration error (percent relative
	// L1 distance to the planted calibration).
	CalibErrors map[string]map[string]float64
	// RateErrors[alg][loss] is the relative average transfer-rate error
	// (fractional, as in the paper's Table 5).
	RateErrors map[string]map[string]float64
	// Winner is the pair the methodology would select.
	WinnerAlg, WinnerLoss string
}

// Table5 runs the synthetic-benchmarking selection of Section 6.3.2 on
// the highest-detail MPI simulator, reporting both calibration error and
// transfer-rate error (the latter disambiguates bandwidth/factor
// compensation, as the paper notes).
func Table5(ctx context.Context, o Options) (*Table5Result, error) {
	v := mpisim.HighestDetail
	nodes := o.MPINodes[:1]
	template, err := mpiTrainData(o, p2pBenchmarks, nodes)
	if err != nil {
		return nil, err
	}
	planted := groundtruth.MPITruthPoint(v)
	syn, err := groundtruth.SyntheticMPIData(v, planted, template, o.MPIRounds)
	if err != nil {
		return nil, err
	}
	res := &Table5Result{
		CalibErrors: make(map[string]map[string]float64),
		RateErrors:  make(map[string]map[string]float64),
	}
	for _, kind := range loss.AllMPIKinds {
		res.Losses = append(res.Losses, kind.String())
	}
	algs := algorithms()
	for _, alg := range algs {
		res.Algorithms = append(res.Algorithms, alg.Name())
		res.CalibErrors[alg.Name()] = make(map[string]float64)
		res.RateErrors[alg.Name()] = make(map[string]float64)
	}
	// Exported fields: cells round-trip through the RunLog as JSON.
	type table5Cell struct{ CE, RE float64 }
	nk := len(loss.AllMPIKinds)
	cells, err := RunJobsLogged(ctx, o.sched(), o.RunLog, "table5", len(algs)*nk, func(ctx context.Context, i int) (table5Cell, error) {
		ai, ki := i/nk, i%nk
		alg := algorithms()[ai] // fresh instance per concurrent cell
		kind := loss.AllMPIKinds[ki]
		// Distinct seed per cell (see Table3).
		cal := o.calibrator(v.Space(), loss.MPIEvaluator(v, kind, syn, o.MPIRounds), alg,
			o.Seed+int64(100*ai+ki+1), o.cacheKey("table5/mpi/"+kind.String()))
		r, err := cal.Run(ctx)
		if err != nil {
			return table5Cell{}, fmt.Errorf("table5 %s/%s: %w", alg.Name(), kind, err)
		}
		ce := core.CalibrationError(v.Space(), r.Best.Point, planted)
		rerrs, err := loss.MPIRateErrors(v, v.DecodeConfig(r.Best.Point), syn, o.MPIRounds)
		if err != nil {
			return table5Cell{}, err
		}
		re := stats.Mean(rerrs) / 100 // fractional, like the paper
		return table5Cell{CE: ce, RE: re}, nil
	})
	if err != nil {
		return nil, err
	}
	bestRate := -1.0
	for i, c := range cells {
		ai, ki := i/nk, i%nk
		kind := loss.AllMPIKinds[ki]
		res.CalibErrors[algs[ai].Name()][kind.String()] = c.CE
		res.RateErrors[algs[ai].Name()][kind.String()] = c.RE
		if bestRate < 0 || c.RE < bestRate {
			bestRate = c.RE
			res.WinnerAlg, res.WinnerLoss = algs[ai].Name(), kind.String()
		}
	}
	return res, nil
}

// Figure4Result is the MPI loss-vs-time convergence curve of Figure 4.
type Figure4Result struct {
	Nodes  int
	Points []ConvergencePoint
}

// Figure4 calibrates the highest-detail MPI simulator against all
// ground-truth data at the smallest node count and traces the loss.
func Figure4(ctx context.Context, o Options) (*Figure4Result, error) {
	v := mpisim.HighestDetail
	nodes := o.MPINodes[:1]
	gt := groundtruth.MPIOptions{
		Benchmarks: p2pBenchmarks, Nodes: nodes, MsgSizes: o.MPIMsgSizes,
		Rounds: o.MPIRounds, Reps: o.Reps, Seed: o.Seed,
	}
	sim, err := o.simulator(simspec.ForMPI(v, loss.MPIL1, gt, o.MPIRounds, false),
		func() (core.Simulator, error) {
			ds, err := groundtruth.GenerateMPIData(gt)
			if err != nil {
				return nil, err
			}
			return loss.MPIEvaluator(v, loss.MPIL1, ds, o.MPIRounds), nil
		})
	if err != nil {
		return nil, err
	}
	cal := o.calibrator(v.Space(), sim, algorithms()[1],
		o.Seed, o.cacheKey("figure4/mpi/L1"))
	r, err := cal.Run(ctx)
	if err != nil {
		return nil, err
	}
	out := &Figure4Result{Nodes: nodes[0]}
	best := r.History[0].Loss
	for i, s := range r.History {
		if s.Loss < best {
			best = s.Loss
		}
		out.Points = append(out.Points, ConvergencePoint{Elapsed: s.Elapsed, Evaluations: i + 1, Loss: best})
	}
	return out, nil
}

// Figure5Result compares all 16 calibrated MPI simulator versions.
type Figure5Result struct {
	Versions []VersionAccuracy
	Best     string
}

// Figure5 implements Section 6.4: calibrate every version on the
// smallest-scale PingPing/PingPong/BiRandom data and report percent
// transfer-rate errors on the same data (the paper presents this as an
// overfitting study; generalization is Section 6.5).
func Figure5(ctx context.Context, o Options) (*Figure5Result, error) {
	nodes := o.MPINodes[:1]
	ds, err := mpiTrainData(o, p2pBenchmarks, nodes)
	if err != nil {
		return nil, err
	}
	versions := mpisim.AllVersions()
	vas, err := RunJobsLogged(ctx, o.sched(), o.RunLog, "figure5", len(versions), func(ctx context.Context, i int) (*VersionAccuracy, error) {
		va, err := calibrateAndTestMPI(ctx, o, versions[i], ds, ds, "p2p")
		if err != nil {
			return nil, fmt.Errorf("figure5 %s: %w", versions[i].Name(), err)
		}
		return va, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Figure5Result{}
	bestAvg := -1.0
	for _, va := range vas {
		res.Versions = append(res.Versions, *va)
		if bestAvg < 0 || va.AvgError < bestAvg {
			bestAvg = va.AvgError
			res.Best = va.Version
		}
	}
	return res, nil
}

// calibrateAndTestMPI calibrates one version on train and scores percent
// rate errors on test. dsKey names the training dataset for the
// evaluation cache (calibrations of the same version on the same data —
// e.g. Figure 5 and Baseline 2 — legitimately share entries).
func calibrateAndTestMPI(ctx context.Context, o Options, v mpisim.Version, train, test *groundtruth.MPIDataset, dsKey string) (*VersionAccuracy, error) {
	r, err := o.calibrateBest(ctx, v.Space(), loss.MPIEvaluator(v, loss.MPIL1, train, o.MPIRounds), algorithms()[1],
		o.Seed, o.cacheKey("mpi/L1/"+dsKey+"/"+v.Name()))
	if err != nil {
		return nil, err
	}
	simStart := time.Now()
	errs, err := loss.MPIRateErrors(v, v.DecodeConfig(r.Best.Point), test, o.MPIRounds)
	if err != nil {
		return nil, err
	}
	simMicros := float64(time.Since(simStart).Microseconds()) / float64(len(test.Measurements))
	return &VersionAccuracy{
		Version:   v.Name(),
		AvgError:  stats.Mean(errs),
		MinError:  stats.Min(errs),
		MaxError:  stats.Max(errs),
		TrainLoss: r.Best.Loss,
		Params:    v.Space().Dim(),
		SimMicros: simMicros,
	}, nil
}

// Baseline2Result is Section 6.4's no-calibration comparison.
type Baseline2Result struct {
	SpecError, CalibratedError float64
	PerBenchmark               map[mpi.Benchmark]float64
}

// SpecBasedMPIConfig returns parameter values read off Summit's public
// specifications: 25 GB/s node injection bandwidth, ~1 µs switch
// latency, and an ideal protocol (factor 1 everywhere) — datasheets do
// not document MPI protocol inefficiencies.
func SpecBasedMPIConfig() mpisim.Config {
	return mpisim.Config{
		BackboneBW:  25e9 * 64, // aggregate fabric guess
		BackboneLat: 1e-6,
		LinkBW:      25e9,
		LinkLat:     1e-6,
		NICBW:       25e9,
		XBusBW:      64e9,
		PCIeBW:      32e9,
		Protocol: mpi.Protocol{
			Factors:      [3]float64{1, 1, 1},
			ChangePoints: mpisim.KnownChangePoints,
		},
	}
}

// Baseline2 measures the spec-based lowest-detail MPI simulator against
// its calibrated counterpart.
func Baseline2(ctx context.Context, o Options) (*Baseline2Result, error) {
	nodes := o.MPINodes[:1]
	ds, err := mpiTrainData(o, p2pBenchmarks, nodes)
	if err != nil {
		return nil, err
	}
	v := mpisim.LowestDetail
	specErrs, err := loss.MPIRateErrors(v, SpecBasedMPIConfig(), ds, o.MPIRounds)
	if err != nil {
		return nil, err
	}
	va, err := calibrateAndTestMPI(ctx, o, v, ds, ds, "p2p")
	if err != nil {
		return nil, err
	}
	out := &Baseline2Result{
		SpecError:       stats.Mean(specErrs),
		CalibratedError: va.AvgError,
		PerBenchmark:    make(map[mpi.Benchmark]float64),
	}
	per := make(map[mpi.Benchmark][]float64)
	for i, m := range ds.Measurements {
		per[m.Benchmark] = append(per[m.Benchmark], specErrs[i])
	}
	for b, errs := range per {
		out.PerBenchmark[b] = stats.Mean(errs)
	}
	return out, nil
}

// Section65Result reports the generalization study of Section 6.5.
type Section65Result struct {
	// StencilFromP2P is the average percent rate error simulating
	// Stencil with a calibration computed from the P2P benchmarks;
	// StencilNative uses a calibration computed from Stencil itself.
	StencilFromP2P, StencilNative float64
	// ScaleErrors[nodes] is the average percent rate error at each node
	// count using the calibration computed at the smallest count.
	ScaleErrors map[int]float64
	// TrainNodes is the node count the calibration was computed at.
	TrainNodes int
}

// Section65 tests cross-benchmark and cross-scale generalization of the
// highest-detail MPI simulator's calibration.
func Section65(ctx context.Context, o Options) (*Section65Result, error) {
	v := mpisim.HighestDetail
	trainNodes := o.MPINodes[:1]
	out := &Section65Result{ScaleErrors: make(map[int]float64), TrainNodes: trainNodes[0]}

	// Cross-benchmark: calibrate on P2P, evaluate on Stencil.
	p2p, err := mpiTrainData(o, p2pBenchmarks, trainNodes)
	if err != nil {
		return nil, err
	}
	stencil, err := mpiTrainData(o, []mpi.Benchmark{mpi.Stencil}, trainNodes)
	if err != nil {
		return nil, err
	}
	fromP2P, err := calibrateAndTestMPI(ctx, o, v, p2p, stencil, "p2p")
	if err != nil {
		return nil, err
	}
	out.StencilFromP2P = fromP2P.AvgError
	native, err := calibrateAndTestMPI(ctx, o, v, stencil, stencil, "stencil")
	if err != nil {
		return nil, err
	}
	out.StencilNative = native.AvgError

	// Cross-scale: calibrate at the smallest count, evaluate at each
	// larger count.
	r, err := o.calibrateBest(ctx, v.Space(), loss.MPIEvaluator(v, loss.MPIL1, p2p, o.MPIRounds), algorithms()[1],
		o.Seed, o.cacheKey("mpi/L1/p2p/"+v.Name()))
	if err != nil {
		return nil, err
	}
	cfg := v.DecodeConfig(r.Best.Point)
	for _, n := range o.MPINodes {
		ds, err := mpiTrainData(o, p2pBenchmarks, []int{n})
		if err != nil {
			return nil, err
		}
		errs, err := loss.MPIRateErrors(v, cfg, ds, o.MPIRounds)
		if err != nil {
			return nil, err
		}
		out.ScaleErrors[n] = stats.Mean(errs)
	}
	return out, nil
}
