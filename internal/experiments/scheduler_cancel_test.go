package experiments

import (
	"context"
	"errors"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestRunJobsLoggedCancelMidRun kills a logged grid run while some
// cells are complete and others are parked on the context: the returned
// error must surface context.Canceled, the completed cells must be in
// the journal, and the journal must reopen cleanly (no torn tail) and
// resume with only the unfinished cells recomputed.
func TestRunJobsLoggedCancelMidRun(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l := openLog(t, path, "seed=1")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	started := make(chan int, 8)
	fn := func(ctx context.Context, i int) (int, error) {
		if i < 2 {
			return i * 10, nil // completes before any cell can block
		}
		started <- i
		<-ctx.Done() // park until the grid run is canceled
		return 0, ctx.Err()
	}

	type outcome struct {
		results []int
		err     error
	}
	done := make(chan outcome, 1)
	go func() {
		r, err := RunJobsLogged(ctx, NewScheduler(2), l, "grid", 8, fn)
		done <- outcome{r, err}
	}()

	// With a pool of 2 the acquire loop starts cells in index order, so
	// by the time a blocking cell reports in, cells 0 and 1 have run
	// (the blocker's slot was freed by one of them) and been journaled.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("no blocking cell started")
	}
	cancel()

	var got outcome
	select {
	case got = <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("RunJobsLogged did not return after cancel")
	}
	if !errors.Is(got.err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled surfaced", got.err)
	}
	if got.results[0] != 0 || got.results[1] != 10 {
		t.Errorf("completed results lost on cancel: %v", got.results[:2])
	}
	if n := l.Len(); n != 2 {
		t.Errorf("journal holds %d cells after cancel, want 2 (only completed ones)", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// The journal a canceled run leaves behind must be replayable: it
	// reopens with exactly the completed cells, serves them without
	// recomputation, and a resumed run finishes the rest.
	l2 := openLog(t, path, "seed=1")
	defer l2.Close()
	if n := l2.Len(); n != 2 {
		t.Fatalf("reopened journal holds %d cells, want 2", n)
	}
	var v int
	if !l2.Lookup("grid", 1, &v) || v != 10 {
		t.Fatalf("Lookup(grid, 1) = %d, want 10", v)
	}
	if l2.Lookup("grid", 2, &v) {
		t.Fatal("canceled cell 2 present in the journal")
	}

	var reran atomic.Int64
	resumed, err := RunJobsLogged(context.Background(), NewScheduler(4), l2, "grid", 8,
		func(_ context.Context, i int) (int, error) {
			reran.Add(1)
			return i * 10, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if n := reran.Load(); n != 6 {
		t.Errorf("resume recomputed %d cells, want 6 (cells 0-1 replay from the journal)", n)
	}
	for i, v := range resumed {
		if v != i*10 {
			t.Errorf("resumed[%d] = %d, want %d", i, v, i*10)
		}
	}
}

// TestRunJobsSequentialCancelStopsEarly: the nil (sequential) scheduler
// must also stop launching cells once the parent context dies, and
// still report the cancellation.
func TestRunJobsSequentialCancelStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	_, err := RunJobs(ctx, nil, 8, func(ctx context.Context, i int) (int, error) {
		ran.Add(1)
		if i == 2 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n != 3 {
		t.Errorf("ran %d cells, want 3 (cells after the cancel must not start)", n)
	}
}
