package experiments

import (
	"context"
	"fmt"
	"sort"
	"time"

	"simcal/internal/groundtruth"
	"simcal/internal/loss"
	"simcal/internal/wfgen"
	"simcal/internal/wfsim"
)

// Figure3Point is one training-dataset option: its acquisition cost and
// the loss the resulting calibration achieves on the testing dataset.
type Figure3Point struct {
	App wfgen.App
	// Scheme is "single" (one worker count × one size) or "rect"
	// (all worker counts ≤ n × all sizes ≤ m).
	Scheme  string
	Workers int
	Tasks   int
	// Cost is Σ workers × makespan over the training executions (s).
	Cost float64
	// TestLoss is the L1 loss of the calibration on the test dataset.
	TestLoss float64
	// Reference marks the training dataset Section 5.4 used.
	Reference bool
}

// Figure3Result is the cost-vs-loss scatter of Figure 3.
type Figure3Result struct {
	Points []Figure3Point
}

// Figure3 implements Section 5.5's training-dataset study: for every
// single-sample and rectangular-sample training option, calibrate the
// highest-detail simulator and measure the loss on the testing dataset.
func Figure3(ctx context.Context, o Options) (*Figure3Result, error) {
	v := wfsim.HighestDetail
	res := &Figure3Result{}
	workers := defaultWorkers(o)
	for _, app := range o.WFApps {
		if app == wfgen.Chain || app == wfgen.Forkjoin {
			continue // the scatter covers the real applications
		}
		full, err := groundtruth.GenerateWorkflowData(groundtruth.WFOptions{
			Apps:    []wfgen.App{app},
			SizeIdx: o.WFSizeIdx, WorkIdx: o.WFWorkIdx, FootIdx: o.WFFootIdx,
			Workers: workers, Reps: o.Reps, Seed: o.Seed,
		})
		if err != nil {
			return nil, err
		}
		_, test := splitTrainTest(full, Options{WFApps: []wfgen.App{app}, WFSizeIdx: o.WFSizeIdx, WFWorkers: workers})
		sizes := appSizes(app, o.WFSizeIdx)
		refWorkers := workers[max(0, len(workers)-2)]
		refSize := sizes[max(0, len(sizes)-2)]
		// Figure 3 calibrations run under a fixed WALL-CLOCK budget (the
		// paper's setup): a larger training dataset makes each loss
		// evaluation costlier, buying fewer optimizer iterations — which
		// is exactly the effect the figure demonstrates. An evaluation-
		// count budget would hide it.
		oo := o
		oo.Budget = o.TrainingBudget
		if oo.Budget <= 0 {
			oo.Budget = 3 * time.Second
		}
		oo.MaxEvals = 0
		oo.Restarts = 1
		// No evaluation cache here: the study measures how evaluation
		// COST trades against optimizer iterations, and memoized (free)
		// re-evaluations would erase exactly that effect. Cells also stay
		// sequential — concurrent wall-clock-budgeted calibrations would
		// contend for CPU and distort each other's budgets.
		oo.Cache = nil
		evalOption := func(scheme string, nw, m int, keep func(*groundtruth.WFGroup) bool) error {
			train := full.Filter(keep)
			if len(train.Groups) == 0 {
				return nil
			}
			r, err := oo.calibrateBest(ctx, v.Space(), loss.WFEvaluator(v, loss.WFL1, train), algorithms()[1], o.Seed, "")
			if err != nil {
				return fmt.Errorf("figure3 %s %s n=%d m=%d: %w", app, scheme, nw, m, err)
			}
			testLoss, err := loss.WFEvaluator(v, loss.WFL1, test)(ctx, r.Best.Point)
			if err != nil {
				return err
			}
			res.Points = append(res.Points, Figure3Point{
				App: app, Scheme: scheme, Workers: nw, Tasks: m,
				Cost: train.Cost(), TestLoss: testLoss,
				Reference: scheme == "single" && nw == refWorkers && m == refSize,
			})
			return nil
		}
		for _, nw := range workers {
			for _, m := range sizes {
				nw, m := nw, m
				if err := evalOption("single", nw, m, func(g *groundtruth.WFGroup) bool {
					return g.Workers == nw && g.Spec.Tasks == m
				}); err != nil {
					return nil, err
				}
				if nw == workers[0] && m == sizes[0] {
					continue // rect(n0, m0) == single(n0, m0)
				}
				if err := evalOption("rect", nw, m, func(g *groundtruth.WFGroup) bool {
					return g.Workers <= nw && g.Spec.Tasks <= m
				}); err != nil {
					return nil, err
				}
			}
		}
	}
	return res, nil
}

// Section55Result reports the ground-truth-diversity studies of
// Section 5.5: calibrations computed from work/footprint-restricted
// subsets and from synthetic chain/forkjoin benchmarks, evaluated
// against real-application ground truth.
type Section55Result struct {
	// BaselineLoss is the test loss when training on the full work ×
	// footprint diversity (the Section 5.4 training dataset).
	BaselineLoss float64
	// RestrictedLosses maps "work=<w>s,data=<d>MB" → test loss when the
	// training dataset contains only that single work/footprint value.
	RestrictedLosses map[string]float64
	// WorseCount counts restricted options that lost to the baseline.
	WorseCount, TotalRestricted int
	// ChainLoss, ForkjoinLoss, BothLoss are test losses when training
	// only on the synthetic benchmarks.
	ChainLoss, ForkjoinLoss, BothLoss float64
}

// Section55 runs the training-data diversity study.
func Section55(ctx context.Context, o Options) (*Section55Result, error) {
	v := wfsim.HighestDetail
	app := wfgen.Epigenomics
	if len(o.WFApps) > 0 && o.WFApps[0] != wfgen.Chain && o.WFApps[0] != wfgen.Forkjoin {
		app = o.WFApps[0]
	}
	workers := defaultWorkers(o)
	full, err := groundtruth.GenerateWorkflowData(groundtruth.WFOptions{
		Apps:    []wfgen.App{app},
		SizeIdx: o.WFSizeIdx, WorkIdx: o.WFWorkIdx, FootIdx: o.WFFootIdx,
		Workers: workers, Reps: o.Reps, Seed: o.Seed,
	})
	if err != nil {
		return nil, err
	}
	appOpts := Options{WFApps: []wfgen.App{app}, WFSizeIdx: o.WFSizeIdx, WFWorkers: workers}
	trainAll, test := splitTrainTest(full, appOpts)
	// Like Figure 3, this study compares training datasets under a fixed
	// wall-clock budget: the paper's "both chain and forkjoin is worse
	// than forkjoin alone" result exists because the combined dataset
	// makes each loss evaluation costlier.
	oo := o
	oo.Budget = o.TrainingBudget
	if oo.Budget <= 0 {
		oo.Budget = 3 * time.Second
	}
	oo.MaxEvals = 0
	oo.Restarts = 1
	// No cache and no concurrency, for the same reason as Figure 3: the
	// study's effect lives in per-evaluation cost under a wall-clock
	// budget.
	oo.Cache = nil
	testLossOf := func(train *groundtruth.WFDataset) (float64, error) {
		r, err := oo.calibrateBest(ctx, v.Space(), loss.WFEvaluator(v, loss.WFL1, train), algorithms()[1], o.Seed, "")
		if err != nil {
			return 0, err
		}
		return loss.WFEvaluator(v, loss.WFL1, test)(ctx, r.Best.Point)
	}
	out := &Section55Result{RestrictedLosses: make(map[string]float64)}
	if out.BaselineLoss, err = testLossOf(trainAll); err != nil {
		return nil, err
	}
	// Work/footprint-restricted subsets of the training dataset.
	type wf struct{ w, d float64 }
	seen := map[wf]bool{}
	for _, g := range trainAll.Groups {
		seen[wf{g.Spec.WorkSeconds, g.Spec.FootprintBytes}] = true
	}
	var combos []wf
	for c := range seen {
		combos = append(combos, c)
	}
	sort.Slice(combos, func(i, j int) bool {
		if combos[i].w != combos[j].w {
			return combos[i].w < combos[j].w
		}
		return combos[i].d < combos[j].d
	})
	for _, c := range combos {
		c := c
		train := trainAll.Filter(func(g *groundtruth.WFGroup) bool {
			return g.Spec.WorkSeconds == c.w && g.Spec.FootprintBytes == c.d
		})
		tl, err := testLossOf(train)
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("work=%gs,data=%gMB", c.w, c.d/wfgen.MB)
		out.RestrictedLosses[key] = tl
		out.TotalRestricted++
		if tl > out.BaselineLoss {
			out.WorseCount++
		}
	}
	// Synthetic-benchmark training: chain-only, forkjoin-only, both.
	synthTrain := func(apps []wfgen.App) (*groundtruth.WFDataset, error) {
		return groundtruth.GenerateWorkflowData(groundtruth.WFOptions{
			Apps:    apps,
			WorkIdx: o.WFWorkIdx, FootIdx: trimFootIdx(o.WFFootIdx, 3),
			Workers: intersectWorkers(workers), Reps: o.Reps, Seed: o.Seed,
		})
	}
	chain, err := synthTrain([]wfgen.App{wfgen.Chain})
	if err != nil {
		return nil, err
	}
	if out.ChainLoss, err = testLossOf(chain); err != nil {
		return nil, err
	}
	forkjoin, err := synthTrain([]wfgen.App{wfgen.Forkjoin})
	if err != nil {
		return nil, err
	}
	if out.ForkjoinLoss, err = testLossOf(forkjoin); err != nil {
		return nil, err
	}
	both := &groundtruth.WFDataset{Groups: append(append([]*groundtruth.WFGroup(nil), chain.Groups...), forkjoin.Groups...)}
	if out.BothLoss, err = testLossOf(both); err != nil {
		return nil, err
	}
	return out, nil
}

// appSizes lists the workflow sizes of an app restricted to the option
// subset, ascending.
func appSizes(app wfgen.App, idx []int) []int {
	sizes := wfgen.Table1[app].Sizes
	var out []int
	if idx == nil {
		out = append(out, sizes...)
	} else {
		for _, i := range idx {
			out = append(out, sizes[i])
		}
	}
	sort.Ints(out)
	return out
}

// trimFootIdx clamps footprint indices to the synthetic benchmarks'
// shorter footprint list.
func trimFootIdx(idx []int, n int) []int {
	if idx == nil {
		return nil
	}
	var out []int
	for _, i := range idx {
		if i < n {
			out = append(out, i)
		}
	}
	if len(out) == 0 {
		out = []int{n - 1}
	}
	return out
}

// intersectWorkers limits worker counts to those meaningful for the
// synthetic benchmarks.
func intersectWorkers(ws []int) []int {
	out := append([]int(nil), ws...)
	if len(out) > 2 {
		out = out[:2]
	}
	return out
}
