package experiments

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"simcal/internal/core"
)

func openLog(t *testing.T, path, meta string) *RunLog {
	t.Helper()
	l, err := OpenRunLog(path, meta)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// TestRunLogResumesCompletedCells: cells recorded before a kill are
// served from the log on the next run — none of them recompute.
func TestRunLogResumesCompletedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l := openLog(t, path, "seed=1")
	var ran atomic.Int64
	fn := func(_ context.Context, i int) (int, error) {
		ran.Add(1)
		return i * 10, nil
	}
	first, err := RunJobsLogged(context.Background(), NewScheduler(3), l, "grid", 6, fn)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 6 {
		t.Fatalf("first pass ran %d cells, want 6", ran.Load())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2 := openLog(t, path, "seed=1")
	defer l2.Close()
	if l2.Len() != 6 {
		t.Fatalf("reopened log holds %d cells, want 6", l2.Len())
	}
	second, err := RunJobsLogged(context.Background(), nil, l2, "grid", 6, fn)
	if err != nil {
		t.Fatal(err)
	}
	if ran.Load() != 6 {
		t.Errorf("resume recomputed %d cells, want 0", ran.Load()-6)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("cell %d: %d vs %d after resume", i, first[i], second[i])
		}
	}
}

// TestRunLogResumesOnlyUnfinishedCells: after a run where some cells
// failed, re-running recomputes exactly the failures.
func TestRunLogResumesOnlyUnfinishedCells(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l := openLog(t, path, "m")
	broken := errors.New("transient infrastructure failure")
	_, err := RunJobsLogged(context.Background(), nil, l, "grid", 6, func(_ context.Context, i int) (int, error) {
		if i%2 == 1 {
			return 0, broken
		}
		return i, nil
	})
	if !errors.Is(err, broken) {
		t.Fatalf("err = %v, want the cell failures", err)
	}
	l.Close()

	l2 := openLog(t, path, "m")
	defer l2.Close()
	var reran []int
	results, err := RunJobsLogged(context.Background(), nil, l2, "grid", 6, func(_ context.Context, i int) (int, error) {
		reran = append(reran, i)
		return i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(reran) != 3 {
		t.Errorf("resume recomputed cells %v, want only the 3 failed ones", reran)
	}
	for i, v := range results {
		if v != i {
			t.Errorf("results[%d] = %d", i, v)
		}
	}
}

// TestRunLogScopesAreIndependent: distinct drivers sharing one log must
// not collide on cell indices.
func TestRunLogScopesAreIndependent(t *testing.T) {
	l := openLog(t, filepath.Join(t.TempDir(), "run.jsonl"), "m")
	defer l.Close()
	if err := l.Store("table3", 0, 111); err != nil {
		t.Fatal(err)
	}
	var got int
	if l.Lookup("figure2", 0, &got) {
		t.Error("figure2/0 served table3/0's value")
	}
	if !l.Lookup("table3", 0, &got) || got != 111 {
		t.Errorf("table3/0 = %d (found=%v), want 111", got, got == 111)
	}
}

// TestRunLogRejectsMismatchedMeta: resume data computed under different
// options must never be served.
func TestRunLogRejectsMismatchedMeta(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	openLog(t, path, "seed=1,maxevals=300").Close()
	if _, err := OpenRunLog(path, "seed=2,maxevals=300"); err == nil {
		t.Fatal("log written under seed=1 reopened under seed=2")
	} else if !strings.Contains(err.Error(), "seed=1") {
		t.Errorf("err = %v, want it to name the conflicting configuration", err)
	}
}

// TestRunLogTruncatesTornTail: the partial line a kill -9 leaves behind
// is dropped; intact cells before it survive.
func TestRunLogTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l := openLog(t, path, "m")
	for i := 0; i < 3; i++ {
		if err := l.Store("grid", i, i*7); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"cell":"grid/3","val`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openLog(t, path, "m")
	defer l2.Close()
	if l2.Len() != 3 {
		t.Fatalf("log holds %d cells after torn tail, want 3", l2.Len())
	}
	var got int
	if !l2.Lookup("grid", 2, &got) || got != 14 {
		t.Errorf("grid/2 = %d, want 14", got)
	}
	if l2.Lookup("grid", 3, &got) {
		t.Error("the torn cell grid/3 was served")
	}
	// The truncated log must accept fresh appends cleanly.
	if err := l2.Store("grid", 3, 21); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	l3 := openLog(t, path, "m")
	defer l3.Close()
	if !l3.Lookup("grid", 3, &got) || got != 21 {
		t.Errorf("grid/3 = %d after re-store, want 21", got)
	}
}

// TestRunLogRejectsMidFileCorruption: damage anywhere but the tail is
// tampering, not a crash footprint — refuse to resume from it.
func TestRunLogRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "run.jsonl")
	l := openLog(t, path, "m")
	for i := 0; i < 3; i++ {
		if err := l.Store("grid", i, i); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	tampered := strings.Replace(string(data), `{"cell":"grid/1"`, `{#cell#:"grid/1"`, 1)
	if tampered == string(data) {
		t.Fatal("test setup: entry to corrupt not found")
	}
	if err := os.WriteFile(path, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRunLog(path, "m"); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

// TestRunLogNotARunLog: arbitrary JSON files are refused.
func TestRunLogNotARunLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "other.json")
	if err := os.WriteFile(path, []byte("{\"kind\":\"something-else\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenRunLog(path, "m"); err == nil {
		t.Fatal("foreign file accepted as run log")
	}
}

// countingObserver counts calibrations started (a resume that serves
// every cell from the log must start none).
type countingObserver struct {
	started atomic.Int64
}

func (c *countingObserver) CalibrationStarted(core.RunInfo)                         { c.started.Add(1) }
func (c *countingObserver) BatchProposed(int)                                       {}
func (c *countingObserver) EvalCompleted(core.Sample, time.Duration, time.Duration) {}
func (c *countingObserver) IncumbentImproved(core.Sample)                           {}
func (c *countingObserver) SurrogateFitted(int, time.Duration)                      {}
func (c *countingObserver) AcquisitionSolved(int, time.Duration, time.Duration)     {}
func (c *countingObserver) CalibrationFinished(*core.Result)                        {}

// TestTable3RunLogResumeDeterminism: the acceptance check at driver
// level — a Table3 grid resumed from its RunLog is output-identical to
// an uninterrupted run and recomputes nothing already logged.
func TestTable3RunLogResumeDeterminism(t *testing.T) {
	ref, err := Table3(context.Background(), tiny())
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "run.jsonl")
	o := tiny()
	o.RunLog = openLog(t, path, "tiny")
	if _, err := Table3(context.Background(), o); err != nil {
		t.Fatal(err)
	}
	o.RunLog.Close()

	// Resume: every table3 cell now comes from the log.
	o2 := tiny()
	obs := &countingObserver{}
	o2.Observer = obs
	o2.RunLog = openLog(t, path, "tiny")
	defer o2.RunLog.Close()
	got, err := Table3(context.Background(), o2)
	if err != nil {
		t.Fatal(err)
	}
	if n := obs.started.Load(); n != 0 {
		t.Errorf("resume started %d fresh calibrations, want 0", n)
	}
	if got.WinnerAlg != ref.WinnerAlg || got.WinnerLoss != ref.WinnerLoss {
		t.Errorf("winner (%s, %s) after resume, want (%s, %s)",
			got.WinnerAlg, got.WinnerLoss, ref.WinnerAlg, ref.WinnerLoss)
	}
	for alg, row := range ref.Errors {
		for kind, want := range row {
			if gotv := got.Errors[alg][kind]; gotv != want {
				t.Errorf("Errors[%s][%s] = %v after resume, want %v", alg, kind, gotv, want)
			}
		}
	}
}
