package simspec

import (
	"context"
	"math"
	"testing"

	"simcal/internal/groundtruth"
	"simcal/internal/loss"
	"simcal/internal/mpi"
	"simcal/internal/mpisim"
	"simcal/internal/wfgen"
	"simcal/internal/wfsim"
)

func wfTestSpec() Spec {
	return ForWF(wfsim.HighestDetail, loss.WFL1, groundtruth.WFOptions{
		Apps:    []wfgen.App{wfgen.Epigenomics},
		SizeIdx: []int{1}, WorkIdx: []int{1}, FootIdx: []int{1},
		Workers: []int{2}, Reps: 2, Seed: 3,
	}, false)
}

func mpiTestSpec() Spec {
	return ForMPI(mpisim.HighestDetail, loss.MPIL1, groundtruth.MPIOptions{
		Benchmarks: []mpi.Benchmark{mpi.PingPong},
		Nodes:      []int{4}, MsgSizes: []float64{1 << 10, 1 << 16},
		Rounds: 2, Reps: 2, Seed: 3,
	}, 2, false)
}

func TestSpecCanonicalParseRoundTrip(t *testing.T) {
	for _, sp := range []Spec{wfTestSpec(), mpiTestSpec()} {
		b, err := sp.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		got, err := Parse(b)
		if err != nil {
			t.Fatalf("parse %s: %v", b, err)
		}
		b2, err := got.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != string(b2) {
			t.Errorf("canonical round-trip changed:\n%s\n%s", b, b2)
		}
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := []string{
		``,
		`{`,
		`{"case":"quantum"}`,                     // unknown case study
		`{"case":"wf","seed":1,"surprise":true}`, // unknown field
		`{"case":"wf","seed":"one","loss":"L1"}`, // wrong type
	}
	for _, c := range cases {
		if _, err := Parse([]byte(c)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", c)
		}
	}
}

// TestBuildSimulatorMatchesLocalBuild is the determinism contract the
// distributed plane depends on: the factory-built evaluator (what a
// remote worker runs) must compute bitwise the same loss as the
// locally built one for the same spec and point.
func TestBuildSimulatorMatchesLocalBuild(t *testing.T) {
	for _, sp := range []Spec{wfTestSpec(), mpiTestSpec()} {
		space, err := sp.Space()
		if err != nil {
			t.Fatal(err)
		}
		local, err := sp.Build()
		if err != nil {
			t.Fatal(err)
		}
		b, err := sp.Canonical()
		if err != nil {
			t.Fatal(err)
		}
		remote, err := BuildSimulator(b)
		if err != nil {
			t.Fatal(err)
		}
		// Mid-range point of the version's space.
		u := make([]float64, len(space))
		for i := range u {
			u[i] = 0.5
		}
		pt := space.Decode(u)
		l1, err := local.Run(context.Background(), pt)
		if err != nil {
			t.Fatal(err)
		}
		l2, err := remote.Run(context.Background(), pt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(l1) != math.Float64bits(l2) {
			t.Errorf("case %s: local loss %v != factory loss %v", sp.Case, l1, l2)
		}
	}
}

func TestBuildSimulatorRejectsBadSpec(t *testing.T) {
	if _, err := BuildSimulator([]byte(`{"case":"wf","seed":1,"loss":"L9","wf_network":"star","wf_storage":"all","wf_compute":"direct"}`)); err == nil {
		t.Error("unknown loss accepted")
	}
	if _, err := BuildSimulator([]byte(`not json`)); err == nil {
		t.Error("garbage spec accepted")
	}
}

func TestVersionFieldsRoundTrip(t *testing.T) {
	for _, v := range wfsim.AllVersions() {
		n, s, c := WFVersionFields(v)
		got, err := ParseWFVersion(n, s, c)
		if err != nil {
			t.Fatalf("%s: %v", v.Name(), err)
		}
		if got != v {
			t.Errorf("wf round-trip %s -> (%s,%s,%s) -> %s", v.Name(), n, s, c, got.Name())
		}
	}
	for _, v := range mpisim.AllVersions() {
		n, nd, p := MPIVersionFields(v)
		got, err := ParseMPIVersion(n, nd, p)
		if err != nil {
			t.Fatalf("%s: %v", v.Name(), err)
		}
		if got != v {
			t.Errorf("mpi round-trip %s -> (%s,%s,%s) -> %s", v.Name(), n, nd, p, got.Name())
		}
	}
	if _, err := ParseWFVersion("mesh", "all", "direct"); err == nil {
		t.Error("unknown wf network accepted")
	}
	if _, err := ParseMPIVersion("backbone", "simple", "floating"); err == nil {
		t.Error("unknown mpi protocol accepted")
	}
}

func TestSyntheticSpecBuilds(t *testing.T) {
	sp := wfTestSpec()
	sp.Synthetic = true
	sim, err := sp.Build()
	if err != nil {
		t.Fatal(err)
	}
	truth := groundtruth.WorkflowTruthPoint(wfsim.HighestDetail)
	l, err := sim.Run(context.Background(), truth)
	if err != nil {
		t.Fatal(err)
	}
	// At the planted truth the synthetic loss is (near) zero.
	if l > 1e-9 {
		t.Errorf("loss at the planted truth = %v, want ~0", l)
	}
}
