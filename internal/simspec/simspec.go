// Package simspec gives every calibratable simulator configuration a
// canonical, serializable description. A Spec names the case study, the
// level-of-detail version, the loss function, and the ground-truth
// dataset scale — everything needed to rebuild the exact loss evaluator
// anywhere: locally in cmd/simcal, or on a remote worker that received
// the spec inside a distributed evaluation lease (see internal/dist).
//
// Because both sides build the simulator from the same spec through the
// same code, a remote evaluation computes bitwise the same loss as a
// local one — the property the distributed plane's determinism
// guarantee rests on.
package simspec

import (
	"bytes"
	"encoding/json"
	"fmt"

	"simcal/internal/core"
	"simcal/internal/groundtruth"
	"simcal/internal/loss"
	"simcal/internal/mpi"
	"simcal/internal/mpisim"
	"simcal/internal/wfgen"
	"simcal/internal/wfsim"
)

// Spec describes one (simulator version, loss function, dataset)
// configuration. All fields are resolved, explicit values — a spec
// never depends on defaults of the process that interprets it.
type Spec struct {
	// Case selects the case study: "wf" (workflows) or "mpi".
	Case string `json:"case"`
	// Synthetic plants the version's hidden truth point and generates
	// synthetic ground truth from it (the paper's Section 5.3.2
	// benchmark methodology) instead of using the standard dataset.
	Synthetic bool `json:"synthetic,omitempty"`
	// Seed drives ground-truth generation.
	Seed int64 `json:"seed"`
	// Loss names the loss function (L1..L6 for wf, L1..L4 for mpi).
	Loss string `json:"loss"`

	// Workflow simulator version (Case == "wf").
	WFNetwork string `json:"wf_network,omitempty"` // one-link|star|series
	WFStorage string `json:"wf_storage,omitempty"` // submit|all
	WFCompute string `json:"wf_compute,omitempty"` // direct|htcondor
	// Workflow ground-truth scale.
	WFApps    []string `json:"wf_apps,omitempty"`
	WFSizeIdx []int    `json:"wf_size_idx,omitempty"`
	WFWorkIdx []int    `json:"wf_work_idx,omitempty"`
	WFFootIdx []int    `json:"wf_foot_idx,omitempty"`
	WFWorkers []int    `json:"wf_workers,omitempty"`
	WFReps    int      `json:"wf_reps,omitempty"`

	// MPI simulator version (Case == "mpi").
	MPINetwork  string `json:"mpi_network,omitempty"`  // backbone|backbone-links|tree4|fat-tree
	MPINode     string `json:"mpi_node,omitempty"`     // simple|complex
	MPIProtocol string `json:"mpi_protocol,omitempty"` // fixed|free
	// MPI ground-truth scale.
	MPIBenchmarks []string  `json:"mpi_benchmarks,omitempty"`
	MPINodes      []int     `json:"mpi_nodes,omitempty"`
	MPIMsgSizes   []float64 `json:"mpi_msg_sizes,omitempty"`
	MPIRounds     int       `json:"mpi_rounds,omitempty"`
	MPIReps       int       `json:"mpi_reps,omitempty"`
	// EvalRounds is the rounds parameter of the MPI loss evaluator.
	EvalRounds int `json:"eval_rounds,omitempty"`
}

// Canonical returns the spec's canonical JSON encoding — the bytes
// shipped in distributed leases and used as the worker-side simulator
// cache key.
func (s Spec) Canonical() ([]byte, error) {
	return json.Marshal(s)
}

// Parse decodes a canonical spec. Unknown fields are rejected so a
// version-skewed coordinator/worker pair fails loudly instead of
// silently evaluating a different configuration.
func Parse(b []byte) (Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return Spec{}, fmt.Errorf("simspec: %w", err)
	}
	switch s.Case {
	case "wf", "mpi":
	default:
		return Spec{}, fmt.Errorf("simspec: unknown case study %q", s.Case)
	}
	return s, nil
}

// Build constructs the loss evaluator the spec describes, generating
// its ground-truth dataset from the spec's own scale fields.
func (s Spec) Build() (core.Simulator, error) {
	switch s.Case {
	case "wf":
		return s.buildWF()
	case "mpi":
		return s.buildMPI()
	}
	return nil, fmt.Errorf("simspec: unknown case study %q", s.Case)
}

// Space returns the parameter space of the spec's simulator version.
func (s Spec) Space() (core.Space, error) {
	switch s.Case {
	case "wf":
		v, err := ParseWFVersion(s.WFNetwork, s.WFStorage, s.WFCompute)
		if err != nil {
			return nil, err
		}
		return v.Space(), nil
	case "mpi":
		v, err := ParseMPIVersion(s.MPINetwork, s.MPINode, s.MPIProtocol)
		if err != nil {
			return nil, err
		}
		return v.Space(), nil
	}
	return nil, fmt.Errorf("simspec: unknown case study %q", s.Case)
}

func (s Spec) buildWF() (core.Simulator, error) {
	v, err := ParseWFVersion(s.WFNetwork, s.WFStorage, s.WFCompute)
	if err != nil {
		return nil, err
	}
	kind, err := ParseWFLoss(s.Loss)
	if err != nil {
		return nil, err
	}
	apps := make([]wfgen.App, len(s.WFApps))
	for i, a := range s.WFApps {
		apps[i] = wfgen.App(a)
	}
	ds, err := groundtruth.GenerateWorkflowData(groundtruth.WFOptions{
		Apps:    apps,
		SizeIdx: s.WFSizeIdx, WorkIdx: s.WFWorkIdx, FootIdx: s.WFFootIdx,
		Workers: s.WFWorkers, Reps: s.WFReps, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	if s.Synthetic {
		ds, err = groundtruth.SyntheticWorkflowData(v, groundtruth.WorkflowTruthPoint(v), ds)
		if err != nil {
			return nil, err
		}
	}
	return loss.WFEvaluator(v, kind, ds), nil
}

func (s Spec) buildMPI() (core.Simulator, error) {
	v, err := ParseMPIVersion(s.MPINetwork, s.MPINode, s.MPIProtocol)
	if err != nil {
		return nil, err
	}
	kind, err := ParseMPILoss(s.Loss)
	if err != nil {
		return nil, err
	}
	benches := make([]mpi.Benchmark, len(s.MPIBenchmarks))
	for i, b := range s.MPIBenchmarks {
		benches[i] = mpi.Benchmark(b)
	}
	ds, err := groundtruth.GenerateMPIData(groundtruth.MPIOptions{
		Benchmarks: benches,
		Nodes:      s.MPINodes, MsgSizes: s.MPIMsgSizes,
		Rounds: s.MPIRounds, Reps: s.MPIReps, Seed: s.Seed,
	})
	if err != nil {
		return nil, err
	}
	if s.Synthetic {
		ds, err = groundtruth.SyntheticMPIData(v, groundtruth.MPITruthPoint(v), ds, s.MPIRounds)
		if err != nil {
			return nil, err
		}
	}
	rounds := s.EvalRounds
	if rounds <= 0 {
		rounds = 1
	}
	return loss.MPIEvaluator(v, kind, ds, rounds), nil
}

// ForWF assembles the spec for a workflow calibration: version v, loss
// kind, and the ground-truth generation options gt. synthetic selects
// the planted-truth synthetic dataset built from gt as template.
func ForWF(v wfsim.Version, kind loss.WFKind, gt groundtruth.WFOptions, synthetic bool) Spec {
	network, storage, compute := WFVersionFields(v)
	apps := make([]string, len(gt.Apps))
	for i, a := range gt.Apps {
		apps[i] = string(a)
	}
	return Spec{
		Case: "wf", Synthetic: synthetic, Seed: gt.Seed, Loss: kind.String(),
		WFNetwork: network, WFStorage: storage, WFCompute: compute,
		WFApps:    apps,
		WFSizeIdx: gt.SizeIdx, WFWorkIdx: gt.WorkIdx, WFFootIdx: gt.FootIdx,
		WFWorkers: gt.Workers, WFReps: gt.Reps,
	}
}

// ForMPI assembles the spec for an MPI calibration: version v, loss
// kind, ground-truth options gt, and the loss evaluator's rounds.
func ForMPI(v mpisim.Version, kind loss.MPIKind, gt groundtruth.MPIOptions, evalRounds int, synthetic bool) Spec {
	network, node, proto := MPIVersionFields(v)
	benches := make([]string, len(gt.Benchmarks))
	for i, b := range gt.Benchmarks {
		benches[i] = string(b)
	}
	return Spec{
		Case: "mpi", Synthetic: synthetic, Seed: gt.Seed, Loss: kind.String(),
		MPINetwork: network, MPINode: node, MPIProtocol: proto,
		MPIBenchmarks: benches,
		MPINodes:      gt.Nodes, MPIMsgSizes: gt.MsgSizes,
		MPIRounds: gt.Rounds, MPIReps: gt.Reps,
		EvalRounds: evalRounds,
	}
}

// BuildSimulator is a dist-compatible factory (assignable to
// dist.Factory): it parses a canonical spec and builds its evaluator.
func BuildSimulator(spec []byte) (core.Simulator, error) {
	s, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return s.Build()
}

// ParseWFVersion maps the CLI component names to a workflow simulator
// version.
func ParseWFVersion(network, storage, compute string) (wfsim.Version, error) {
	var v wfsim.Version
	switch network {
	case "one-link":
		v.Network = wfsim.OneLink
	case "star":
		v.Network = wfsim.Star
	case "series":
		v.Network = wfsim.Series
	default:
		return v, fmt.Errorf("simspec: unknown wf network %q", network)
	}
	switch storage {
	case "submit":
		v.Storage = wfsim.SubmitOnly
	case "all":
		v.Storage = wfsim.AllNodes
	default:
		return v, fmt.Errorf("simspec: unknown wf storage %q", storage)
	}
	switch compute {
	case "direct":
		v.Compute = wfsim.Direct
	case "htcondor":
		v.Compute = wfsim.HTCondor
	default:
		return v, fmt.Errorf("simspec: unknown wf compute %q", compute)
	}
	return v, nil
}

// WFVersionFields is the inverse of ParseWFVersion: the CLI component
// names for a workflow simulator version.
func WFVersionFields(v wfsim.Version) (network, storage, compute string) {
	switch v.Network {
	case wfsim.OneLink:
		network = "one-link"
	case wfsim.Star:
		network = "star"
	case wfsim.Series:
		network = "series"
	}
	switch v.Storage {
	case wfsim.SubmitOnly:
		storage = "submit"
	case wfsim.AllNodes:
		storage = "all"
	}
	switch v.Compute {
	case wfsim.Direct:
		compute = "direct"
	case wfsim.HTCondor:
		compute = "htcondor"
	}
	return network, storage, compute
}

// ParseMPIVersion maps the CLI component names to an MPI simulator
// version.
func ParseMPIVersion(network, node, proto string) (mpisim.Version, error) {
	var v mpisim.Version
	switch network {
	case "backbone":
		v.Network = mpisim.Backbone
	case "backbone-links":
		v.Network = mpisim.BackboneLinks
	case "tree4":
		v.Network = mpisim.Tree4
	case "fat-tree":
		v.Network = mpisim.FatTree
	default:
		return v, fmt.Errorf("simspec: unknown mpi network %q", network)
	}
	switch node {
	case "simple":
		v.Node = mpisim.SimpleNode
	case "complex":
		v.Node = mpisim.ComplexNode
	default:
		return v, fmt.Errorf("simspec: unknown mpi node %q", node)
	}
	switch proto {
	case "fixed":
		v.Protocol = mpisim.FixedPoints
	case "free":
		v.Protocol = mpisim.FreePoints
	default:
		return v, fmt.Errorf("simspec: unknown mpi protocol %q", proto)
	}
	return v, nil
}

// MPIVersionFields is the inverse of ParseMPIVersion.
func MPIVersionFields(v mpisim.Version) (network, node, proto string) {
	switch v.Network {
	case mpisim.Backbone:
		network = "backbone"
	case mpisim.BackboneLinks:
		network = "backbone-links"
	case mpisim.Tree4:
		network = "tree4"
	case mpisim.FatTree:
		network = "fat-tree"
	}
	switch v.Node {
	case mpisim.SimpleNode:
		node = "simple"
	case mpisim.ComplexNode:
		node = "complex"
	}
	switch v.Protocol {
	case mpisim.FixedPoints:
		proto = "fixed"
	case mpisim.FreePoints:
		proto = "free"
	}
	return network, node, proto
}

// ParseWFLoss resolves a workflow loss-function name.
func ParseWFLoss(name string) (loss.WFKind, error) {
	for _, k := range loss.AllWFKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("simspec: unknown workflow loss %q", name)
}

// ParseMPILoss resolves an MPI loss-function name.
func ParseMPILoss(name string) (loss.MPIKind, error) {
	for _, k := range loss.AllMPIKinds {
		if k.String() == name {
			return k, nil
		}
	}
	return 0, fmt.Errorf("simspec: unknown MPI loss %q", name)
}
