package obs

import (
	"fmt"
	"io"
	"math"
	"time"
)

// Event names the calibration bridge emits (see core.NewObsObserver).
// They are part of the trace schema documented in README.md.
const (
	EventCalibrationStarted  = "calibration_started"
	EventBatchProposed       = "batch_proposed"
	EventEvalCompleted       = "eval_completed"
	EventCacheHit            = "cache_hit"
	EventIncumbentImproved   = "incumbent_improved"
	EventSurrogateFitted     = "surrogate_fitted"
	EventSurrogateFitDetail  = "surrogate_fit_detail"
	EventAcquisitionSolved   = "acquisition_solved"
	EventCalibrationFinished = "calibration_finished"

	// Fault-tolerance events (see core.FaultObserver): recovery actions
	// taken by the runtime, so -replay can reconstruct a faulty run.
	EventPanicRecovered    = "panic_recovered"
	EventEvalRetried       = "eval_retry"
	EventEvalTimeout       = "eval_timeout"
	EventBreakerState      = "breaker_state"
	EventCheckpointWritten = "checkpoint_written"
	EventCheckpointFailed  = "checkpoint_failed"

	// Distributed-evaluation events (see the dist package). Lifecycle
	// events come from the coordinator itself; dist_worker_eval records
	// are worker-side evaluation events shipped over telemetry frames
	// and re-emitted by the coordinator with `worker`, `source`, and
	// clock-offset fields, so one trace file holds the cross-process
	// timeline keyed by lease ID. They are additions to — never
	// reorderings of — the calibration events, so the calibration
	// trajectory stays bitwise identical to a serial run.
	EventDistWorkerConnected    = "dist_worker_connected"
	EventDistWorkerDisconnected = "dist_worker_disconnected"
	EventDistLeaseRequeued      = "dist_lease_requeued"
	EventDistWorkerEval         = "dist_worker_eval"

	// Chaos-hardening events: a lease quarantined as poison after
	// exceeding its requeue cap (the dead-letter record), the
	// coordinator entering or leaving fleet-empty degraded mode, and a
	// lease evaluated on the coordinator's local fallback evaluator.
	EventDistLeaseQuarantined = "dist_lease_quarantined"
	EventDistDegraded         = "dist_degradation"
	EventDistLocalEval        = "dist_local_eval"

	// Async-calibration event: one record per completion the async
	// optimizer consumed, carrying `seq` (submission sequence number)
	// and `index` (position in consumption order). The seq sequence in
	// index order IS the run's completion order — feeding it back via
	// `simcal -async-replay` reproduces the run bitwise.
	EventDistAsyncCompletion = "dist_async_completion"
)

// ConvergencePoint is one point of a replayed best-loss-vs-time curve.
type ConvergencePoint struct {
	// Elapsed is the calibration wall-clock at which the evaluation
	// completed.
	Elapsed time.Duration
	// Evaluations is the number of evaluations completed so far.
	Evaluations int
	// Loss is the best loss seen up to and including this evaluation.
	Loss float64
}

// ReplayConvergence reconstructs the best-loss-vs-time curve (the
// paper's Figures 1 and 4) from a JSONL trace alone, without re-running
// the calibration. It consumes the eval_completed events in emission
// order and returns one point per evaluation, exactly mirroring
// core.Result.LossOverTime.
func ReplayConvergence(r io.Reader) ([]ConvergencePoint, error) {
	recs, err := ReadTrace(r)
	if err != nil {
		return nil, err
	}
	return ReplayConvergenceRecords(recs)
}

// ReplayConvergenceRecords is ReplayConvergence over pre-decoded
// records.
func ReplayConvergenceRecords(recs []Record) ([]ConvergencePoint, error) {
	var points []ConvergencePoint
	best := 0.0
	haveBest := false
	for _, rec := range recs {
		if rec.Name != EventEvalCompleted {
			continue
		}
		loss, ok := fieldFloat(rec.Fields, "loss")
		if !ok {
			return nil, fmt.Errorf("obs: eval_completed record %d lacks a loss field", rec.Seq)
		}
		// The calibrator normalizes NaN losses to +Inf before recording
		// them; apply the same rule here so a hand-edited or pre-fix
		// trace cannot poison the running minimum (NaN compares false
		// with everything, freezing the curve).
		if math.IsNaN(loss) {
			loss = math.Inf(1)
		}
		// elapsed_ns is emitted alongside elapsed_s for an exact
		// round-trip (float seconds lose nanosecond precision).
		var elapsed time.Duration
		if ns, ok := fieldFloat(rec.Fields, "elapsed_ns"); ok {
			elapsed = time.Duration(ns)
		} else if s, ok := fieldFloat(rec.Fields, "elapsed_s"); ok {
			elapsed = time.Duration(s * float64(time.Second))
		} else {
			return nil, fmt.Errorf("obs: eval_completed record %d lacks an elapsed_s field", rec.Seq)
		}
		if !haveBest || loss < best {
			best = loss
			haveBest = true
		}
		points = append(points, ConvergencePoint{
			Elapsed:     elapsed,
			Evaluations: len(points) + 1,
			Loss:        best,
		})
	}
	return points, nil
}

// ReplayAsyncOrder reconstructs an asynchronous run's completion order
// from its dist_async_completion trace events: the submission sequence
// numbers sorted by consumption index. The result feeds an async
// optimizer's replay mode, which re-runs the recorded order to a
// bitwise-identical result. An empty slice (no async events) means the
// trace came from a batch run.
func ReplayAsyncOrder(recs []Record) ([]int, error) {
	var order []int
	for _, rec := range recs {
		if rec.Name != EventDistAsyncCompletion {
			continue
		}
		seq, ok := fieldFloat(rec.Fields, "seq")
		if !ok {
			return nil, fmt.Errorf("obs: dist_async_completion record %d lacks a seq field", rec.Seq)
		}
		idx, ok := fieldFloat(rec.Fields, "index")
		if !ok {
			return nil, fmt.Errorf("obs: dist_async_completion record %d lacks an index field", rec.Seq)
		}
		i := int(idx)
		if i != len(order) {
			return nil, fmt.Errorf("obs: dist_async_completion records out of order: index %d at position %d", i, len(order))
		}
		if seq != math.Trunc(seq) || seq < 0 {
			return nil, fmt.Errorf("obs: dist_async_completion record %d has invalid seq %v", rec.Seq, seq)
		}
		order = append(order, int(seq))
	}
	return order, nil
}

// fieldFloat extracts a numeric field from a decoded JSON payload. The
// tracer encodes non-finite floats as the string sentinels "Inf",
// "-Inf", and "NaN" (JSON has no representation for them); fieldFloat
// decodes those back to their float64 values.
func fieldFloat(f Fields, key string) (float64, bool) {
	v, ok := f[key]
	if !ok {
		return 0, false
	}
	switch x := v.(type) {
	case float64:
		return x, true
	case int64:
		return float64(x), true
	case int:
		return float64(x), true
	case string:
		switch x {
		case "Inf", "+Inf":
			return math.Inf(1), true
		case "-Inf":
			return math.Inf(-1), true
		case "NaN":
			return math.NaN(), true
		}
		return 0, false
	default:
		return 0, false
	}
}
