package obs

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// namedPoint mimics core.Point: a named map type that the sanitizer must
// handle through reflection, not a direct type switch.
type namedPoint map[string]float64

// TestTraceNonFiniteFields is the regression test for trace poisoning: a
// failing simulator configuration yields +Inf losses, and encoding/json
// refuses non-finite floats — one such record used to fail the encoder
// and silently drop every later event. Non-finite values must now round-
// trip as string sentinels with the rest of the trace intact.
// (Named TestTrace… so the CI determinism job replays it with -count=2.)
func TestTraceNonFiniteFields(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fakeClock(time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC), time.Second))

	point := namedPoint{"latency": math.Inf(1), "bandwidth": 125.0}
	tr.Emit(EventEvalCompleted, Fields{"loss": math.Inf(1), "elapsed_s": 0.1, "point": point})
	tr.Emit(EventEvalCompleted, Fields{"loss": math.Inf(-1), "elapsed_s": 0.2})
	tr.Emit(EventEvalCompleted, Fields{"loss": math.NaN(), "elapsed_s": 0.3})
	tr.Emit(EventEvalCompleted, Fields{"loss": 0.5, "elapsed_s": 0.4, "probes": []float64{1, math.Inf(1)}})
	// The event after the poisonous ones is the regression: it must survive.
	tr.Emit(EventIncumbentImproved, Fields{"loss": 0.5})
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush after non-finite fields = %v, want nil", err)
	}
	// Sanitization is copy-on-write: the caller's maps stay untouched.
	if !math.IsInf(point["latency"], 1) {
		t.Fatal("Emit mutated the caller's field map")
	}

	recs, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 5 {
		t.Fatalf("got %d records, want all 5 (later events must survive)", len(recs))
	}
	for i, want := range []any{"Inf", "-Inf", "NaN", 0.5} {
		if got := recs[i].Fields["loss"]; got != want {
			t.Errorf("record %d loss = %v (%T), want %v", i, got, got, want)
		}
	}
	nested, ok := recs[0].Fields["point"].(map[string]any)
	if !ok {
		t.Fatalf("nested point decoded as %T", recs[0].Fields["point"])
	}
	if nested["latency"] != "Inf" || nested["bandwidth"] != 125.0 {
		t.Errorf("nested map sanitized wrong: %v", nested)
	}

	// Replay decodes the sentinels back into non-finite floats.
	pts, err := ReplayConvergenceRecords(recs)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 4 {
		t.Fatalf("replay got %d points, want 4", len(pts))
	}
	if !math.IsInf(pts[0].Loss, 1) {
		t.Errorf("replayed point 0 best loss = %v, want +Inf", pts[0].Loss)
	}
	if !math.IsInf(pts[1].Loss, -1) {
		t.Errorf("replayed point 1 best loss = %v, want -Inf (incumbent)", pts[1].Loss)
	}
	if pts[3].Loss != math.Inf(-1) {
		t.Errorf("replayed point 3 best loss = %v, want the -Inf incumbent", pts[3].Loss)
	}
}

// TestTraceSanitizeValue pins the sentinel encoding and the pass-through
// of finite values at every nesting level.
func TestTraceSanitizeValue(t *testing.T) {
	if v, changed := sanitizeValue(1.5); changed || v != 1.5 {
		t.Errorf("finite float changed: %v %v", v, changed)
	}
	if v, _ := sanitizeValue(math.Inf(1)); v != "Inf" {
		t.Errorf("+Inf → %v", v)
	}
	if v, _ := sanitizeValue(math.Inf(-1)); v != "-Inf" {
		t.Errorf("-Inf → %v", v)
	}
	if v, _ := sanitizeValue(math.NaN()); v != "NaN" {
		t.Errorf("NaN → %v", v)
	}
	if v, _ := sanitizeValue(float32(math.Inf(1))); v != "Inf" {
		t.Errorf("float32 +Inf → %v", v)
	}
	if v, changed := sanitizeValue("already a string"); changed {
		t.Errorf("string changed: %v", v)
	}
	// A finite named map passes through unchanged (no pointless copy).
	m := namedPoint{"a": 1}
	if v, changed := sanitizeValue(m); changed {
		t.Errorf("finite named map copied: %v", v)
	}
	// fieldFloat inverts the sentinels.
	for s, want := range map[string]float64{"Inf": math.Inf(1), "+Inf": math.Inf(1), "-Inf": math.Inf(-1)} {
		got, ok := fieldFloat(Fields{"v": s}, "v")
		if !ok || got != want {
			t.Errorf("fieldFloat(%q) = %v, %v", s, got, ok)
		}
	}
	if got, ok := fieldFloat(Fields{"v": "NaN"}, "v"); !ok || !math.IsNaN(got) {
		t.Errorf("fieldFloat(NaN) = %v, %v", got, ok)
	}
	if _, ok := fieldFloat(Fields{"v": "not a number"}, "v"); ok {
		t.Error("fieldFloat accepted an arbitrary string")
	}
}
