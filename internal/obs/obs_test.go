package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(41)
	c.Add(-5) // ignored: counters are monotone
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
}

func TestGaugeWatermarks(t *testing.T) {
	var g Gauge
	g.SetMax(3)
	g.SetMax(1)
	if got := g.Value(); got != 3 {
		t.Fatalf("SetMax gauge = %g, want 3", got)
	}
	g.SetMax(7.5)
	if got := g.Value(); got != 7.5 {
		t.Fatalf("SetMax gauge = %g, want 7.5", got)
	}

	var lo Gauge
	lo.SetMin(4)
	lo.SetMin(9)
	if got := lo.Value(); got != 4 {
		t.Fatalf("SetMin gauge = %g, want 4", got)
	}
	lo.SetMin(0.25)
	if got := lo.Value(); got != 0.25 {
		t.Fatalf("SetMin gauge = %g, want 0.25", got)
	}
}

func TestHistogramStat(t *testing.T) {
	var h Histogram
	for _, v := range []int64{1, 2, 3, 100, 1000} {
		h.Observe(v)
	}
	st := h.Stat()
	if st.Count != 5 || st.Sum != 1106 {
		t.Fatalf("stat count/sum = %d/%d, want 5/1106", st.Count, st.Sum)
	}
	if st.Min != 1 || st.Max != 1000 {
		t.Fatalf("stat min/max = %d/%d, want 1/1000", st.Min, st.Max)
	}
	if st.P50 < 1 || st.P50 > 8 {
		t.Fatalf("p50 = %d, want within a factor of two of the median bucket", st.P50)
	}
	if st.P99 < 512 || st.P99 > 1000 {
		t.Fatalf("p99 = %d, want near the max", st.P99)
	}
	if m := st.Mean(); math.Abs(m-1106.0/5) > 1e-9 {
		t.Fatalf("mean = %g", m)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const goroutines, per = 8, 1000
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	st := h.Stat()
	if st.Count != goroutines*per {
		t.Fatalf("count = %d, want %d", st.Count, goroutines*per)
	}
	if st.Min != 0 || st.Max != goroutines*per-1 {
		t.Fatalf("min/max = %d/%d", st.Min, st.Max)
	}
}

func TestRegistrySnapshotAndText(t *testing.T) {
	r := NewRegistry()
	r.Counter("cal.evaluations").Add(10)
	if r.Counter("cal.evaluations") != r.Counter("cal.evaluations") {
		t.Fatal("counter handle not stable")
	}
	r.Gauge("cal.best_loss").Set(0.5)
	r.Histogram("cal.eval_ns").ObserveDuration(2 * time.Millisecond)
	s := r.Snapshot()
	if s.Counters["cal.evaluations"] != 10 {
		t.Fatalf("snapshot counter = %d", s.Counters["cal.evaluations"])
	}
	if s.Gauges["cal.best_loss"] != 0.5 {
		t.Fatalf("snapshot gauge = %g", s.Gauges["cal.best_loss"])
	}
	if s.Histograms["cal.eval_ns"].Count != 1 {
		t.Fatalf("snapshot hist count = %d", s.Histograms["cal.eval_ns"].Count)
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{"cal.evaluations", "cal.best_loss", "cal.eval_ns", "count=1"} {
		if !strings.Contains(text, want) {
			t.Fatalf("text snapshot missing %q:\n%s", want, text)
		}
	}
	// Durations render as durations, not raw nanosecond counts.
	if !strings.Contains(text, "ms") {
		t.Fatalf("duration-valued histogram not humanized:\n%s", text)
	}
	if _, err := json.Marshal(s); err != nil {
		t.Fatalf("snapshot not JSON-encodable: %v", err)
	}
}

// fakeClock returns a Clock stepping by dt per call.
func fakeClock(start time.Time, dt time.Duration) Clock {
	t := start
	return func() time.Time {
		now := t
		t = t.Add(dt)
		return now
	}
}

func TestTracerJSONL(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(fakeClock(time.Date(2026, 8, 5, 0, 0, 0, 0, time.UTC), time.Second))
	tr.EmitManifest(Manifest{Algorithm: "BO-GP", Space: []string{"x", "y"}, Seed: 7, Version: "test"})
	tr.Emit(EventEvalCompleted, Fields{"loss": 0.25, "elapsed_s": 1.5})
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	recs, err := ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	m, ok := TraceManifest(recs)
	if !ok || m.Algorithm != "BO-GP" || m.Seed != 7 || len(m.Space) != 2 {
		t.Fatalf("manifest = %+v ok=%v", m, ok)
	}
	if recs[0].Seq != 0 || recs[1].Seq != 1 {
		t.Fatalf("bad sequence numbers: %d %d", recs[0].Seq, recs[1].Seq)
	}
	// Injected clock: manifest at +1s (first tick after the anchor),
	// strictly ordered timestamps.
	if !recs[1].T.After(recs[0].T) {
		t.Fatalf("timestamps not increasing: %v %v", recs[0].T, recs[1].T)
	}
	if recs[1].ElapsedS != 2 {
		t.Fatalf("elapsed = %g, want 2 (two ticks of the fake clock)", recs[1].ElapsedS)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	tr.Emit("x", nil) // must not panic
	tr.EmitManifest(Manifest{})
	tr.SetClock(time.Now)
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	var l *Logger
	l.Printf("discarded %d", 1)
}

func TestReplayConvergence(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	losses := []float64{3, 1, 2, 0.5}
	for i, loss := range losses {
		tr.Emit(EventEvalCompleted, Fields{
			"loss":       loss,
			"elapsed_s":  float64(i+1) * 0.1,
			"elapsed_ns": float64((i + 1) * 100_000_000),
		})
	}
	tr.Emit(EventIncumbentImproved, Fields{"loss": 0.5}) // ignored by replay
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	pts, err := ReplayConvergence(&buf)
	if err != nil {
		t.Fatal(err)
	}
	wantBest := []float64{3, 1, 1, 0.5}
	if len(pts) != len(wantBest) {
		t.Fatalf("got %d points, want %d", len(pts), len(wantBest))
	}
	for i, p := range pts {
		if p.Loss != wantBest[i] {
			t.Fatalf("point %d best loss = %g, want %g", i, p.Loss, wantBest[i])
		}
		if p.Evaluations != i+1 {
			t.Fatalf("point %d evaluations = %d", i, p.Evaluations)
		}
		if want := time.Duration(i+1) * 100 * time.Millisecond; p.Elapsed != want {
			t.Fatalf("point %d elapsed = %v, want %v", i, p.Elapsed, want)
		}
	}
}

func TestBuildVersionNonEmpty(t *testing.T) {
	if BuildVersion() == "" {
		t.Fatal("BuildVersion returned an empty string")
	}
}

func TestLoggerOutput(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.SetClock(fakeClock(time.Unix(0, 0), 250*time.Millisecond))
	l.Printf("hello %s", "world")
	if got := buf.String(); !strings.Contains(got, "hello world") || !strings.Contains(got, "250ms") {
		t.Fatalf("logger output = %q", got)
	}
}
