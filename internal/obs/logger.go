package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Logger is a minimal timestamped progress logger for the CLIs: each
// line is prefixed with the elapsed time since the logger was created.
// A nil *Logger discards everything, so callers never branch.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	clock Clock
	start time.Time
}

// NewLogger returns a logger writing to w.
func NewLogger(w io.Writer) *Logger {
	l := &Logger{w: w, clock: time.Now}
	l.start = l.clock()
	return l
}

// SetClock replaces the logger's time source (for deterministic tests)
// and re-anchors its start time.
func (l *Logger) SetClock(c Clock) {
	if l == nil || c == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.clock = c
	l.start = c()
}

// Printf writes one formatted line, prefixed with the elapsed time.
func (l *Logger) Printf(format string, args ...any) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	elapsed := l.clock().Sub(l.start).Round(time.Millisecond)
	fmt.Fprintf(l.w, "[%8s] %s\n", elapsed, fmt.Sprintf(format, args...))
}
