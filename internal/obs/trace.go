package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"reflect"
	"sync"
	"time"
)

// Fields carries a record's structured payload. Values must be
// JSON-encodable (numbers, strings, bools, slices, maps). Non-finite
// floats are allowed: the tracer encodes them as the string sentinels
// "Inf", "-Inf", and "NaN" (JSON has no representation for them), and
// the replay helpers decode the sentinels back.
type Fields map[string]any

// Record is one line of a JSONL trace.
type Record struct {
	// T is the wall-clock timestamp (RFC 3339, from the tracer's clock).
	T time.Time `json:"ts"`
	// ElapsedS is seconds since the tracer was created — the trace's
	// monotone time axis.
	ElapsedS float64 `json:"t_s"`
	// Seq is the record's position in emission order, starting at 0.
	Seq int64 `json:"seq"`
	// Name identifies the event (e.g. "eval_completed", "manifest").
	Name string `json:"name"`
	// Fields is the event payload.
	Fields Fields `json:"fields,omitempty"`
}

// Manifest describes one calibration run, emitted as the trace's first
// record so a trace file is self-describing.
type Manifest struct {
	Algorithm string   `json:"algorithm"`
	Space     []string `json:"space"`
	Seed      int64    `json:"seed"`
	BudgetS   float64  `json:"budget_s,omitempty"`
	MaxEvals  int      `json:"max_evals,omitempty"`
	Workers   int      `json:"workers,omitempty"`
	Version   string   `json:"version"`
	Case      string   `json:"case,omitempty"`
	Loss      string   `json:"loss,omitempty"`
}

// ManifestName is the record name under which a run manifest is emitted.
const ManifestName = "manifest"

// Tracer emits structured JSONL records. All methods are safe for
// concurrent use and safe on a nil receiver (a nil *Tracer is the
// disabled tracer and costs one branch per call).
type Tracer struct {
	mu    sync.Mutex
	w     *bufio.Writer
	clock Clock
	start time.Time
	seq   int64
	err   error
}

// NewTracer returns a tracer writing JSONL records to w. Call Flush (or
// Close the underlying file after Flush) when done.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: bufio.NewWriter(w), clock: time.Now}
	t.start = t.clock()
	return t
}

// SetClock replaces the tracer's time source (for deterministic tests)
// and re-anchors the trace's start time. Must be called before the
// first record is emitted.
func (t *Tracer) SetClock(c Clock) {
	if t == nil || c == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock = c
	t.start = c()
}

// Emit writes one record. Events with the same name share a schema
// defined by the caller; fields may be nil.
func (t *Tracer) Emit(name string, fields Fields) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.emitLocked(name, fields)
}

func (t *Tracer) emitLocked(name string, fields Fields) {
	if t.err != nil {
		return
	}
	now := t.clock()
	rec := Record{
		T:        now,
		ElapsedS: now.Sub(t.start).Seconds(),
		Seq:      t.seq,
		Name:     name,
		Fields:   sanitizeFields(fields),
	}
	t.seq++
	b, err := json.Marshal(rec)
	if err != nil {
		t.err = err
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil {
		t.err = err
	}
}

// sanitizeFields returns fields with every non-finite float replaced by
// the string sentinels "Inf", "-Inf", or "NaN", recursing into nested
// maps and slices. JSON has no encoding for non-finite numbers, so
// without this a single +Inf loss (a failed evaluation) would make
// json.Marshal fail and permanently poison the tracer. Payloads with
// only finite values — the common case — are returned as-is, without
// copying.
func sanitizeFields(fields Fields) Fields {
	var out Fields
	for k, v := range fields {
		s, changed := sanitizeValue(v)
		if !changed {
			continue
		}
		if out == nil {
			// Copy-on-write: never mutate the caller's map.
			out = make(Fields, len(fields))
			for k2, v2 := range fields {
				out[k2] = v2
			}
		}
		out[k] = s
	}
	if out == nil {
		return fields
	}
	return out
}

// sanitizeValue replaces non-finite floats in v (including inside
// nested maps, slices, and arrays, via reflection — payload values such
// as core.Point are named map types that a type switch would miss) with
// string sentinels. It reports whether anything was replaced; when
// nothing was, v is returned untouched.
func sanitizeValue(v any) (any, bool) {
	switch x := v.(type) {
	case float64:
		if s, bad := nonFiniteSentinel(x); bad {
			return s, true
		}
		return v, false
	case float32:
		if s, bad := nonFiniteSentinel(float64(x)); bad {
			return s, true
		}
		return v, false
	case nil, bool, string, int, int8, int16, int32, int64,
		uint, uint8, uint16, uint32, uint64:
		return v, false
	}
	rv := reflect.ValueOf(v)
	switch rv.Kind() {
	case reflect.Float32, reflect.Float64:
		if s, bad := nonFiniteSentinel(rv.Float()); bad {
			return s, true
		}
		return v, false
	case reflect.Map:
		var out map[string]any
		iter := rv.MapRange()
		for iter.Next() {
			if s, changed := sanitizeValue(iter.Value().Interface()); changed {
				if out == nil {
					out = make(map[string]any, rv.Len())
					i2 := rv.MapRange()
					for i2.Next() {
						out[fmt.Sprint(i2.Key().Interface())] = i2.Value().Interface()
					}
				}
				out[fmt.Sprint(iter.Key().Interface())] = s
			}
		}
		if out == nil {
			return v, false
		}
		return out, true
	case reflect.Slice, reflect.Array:
		var out []any
		for i := 0; i < rv.Len(); i++ {
			if s, changed := sanitizeValue(rv.Index(i).Interface()); changed {
				if out == nil {
					out = make([]any, rv.Len())
					for j := 0; j < rv.Len(); j++ {
						out[j] = rv.Index(j).Interface()
					}
				}
				out[i] = s
			}
		}
		if out == nil {
			return v, false
		}
		return out, true
	}
	return v, false
}

// nonFiniteSentinel maps a non-finite float to its trace sentinel
// string, reporting false for finite values.
func nonFiniteSentinel(f float64) (string, bool) {
	switch {
	case math.IsInf(f, 1):
		return "Inf", true
	case math.IsInf(f, -1):
		return "-Inf", true
	case math.IsNaN(f):
		return "NaN", true
	}
	return "", false
}

// EmitManifest writes the run manifest record.
func (t *Tracer) EmitManifest(m Manifest) {
	if t == nil {
		return
	}
	b, err := json.Marshal(m)
	if err != nil {
		return
	}
	var f Fields
	if err := json.Unmarshal(b, &f); err != nil {
		return
	}
	t.Emit(ManifestName, f)
}

// Flush writes buffered records through to the underlying writer and
// reports the first error encountered while tracing. Emit never reports
// errors itself (it sits on the calibration hot path), so Flush is
// where a tracing failure — a full disk, a closed writer — first
// surfaces; once one occurs, subsequent records are dropped.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if err := t.w.Flush(); err != nil && t.err == nil {
		t.err = err
	}
	return t.err
}

// ReadTrace decodes every record of a JSONL trace. Blank lines are
// skipped; a malformed line is an error identifying its line number.
func ReadTrace(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var recs []Record
	line := 0
	for sc.Scan() {
		line++
		text := sc.Bytes()
		if len(text) == 0 {
			continue
		}
		var rec Record
		if err := json.Unmarshal(text, &rec); err != nil {
			return nil, fmt.Errorf("obs: trace line %d: %w", line, err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: reading trace: %w", err)
	}
	return recs, nil
}

// TraceManifest returns the first manifest record of a decoded trace,
// or false when the trace has none.
func TraceManifest(recs []Record) (Manifest, bool) {
	for _, rec := range recs {
		if rec.Name != ManifestName {
			continue
		}
		b, err := json.Marshal(rec.Fields)
		if err != nil {
			return Manifest{}, false
		}
		var m Manifest
		if err := json.Unmarshal(b, &m); err != nil {
			return Manifest{}, false
		}
		return m, true
	}
	return Manifest{}, false
}
