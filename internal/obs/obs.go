// Package obs is the framework's observability layer: a process-wide
// metrics registry (counters, gauges, histograms with atomic fast
// paths), a structured JSONL trace facility, and a small timestamped
// logger. It depends only on the standard library and is designed so
// that disabled instrumentation costs nothing on the hot paths: all
// trace/logger methods are nil-receiver safe, and metric updates are
// single atomic operations on pre-resolved handles.
//
// The calibration stack is wired to it at three levels:
//
//   - the DES engine and the flow kernel flush per-run statistics
//     (events dispatched, heap depth, progressive-filling solves and
//     iterations) into the default registry;
//   - core.Calibrator accepts an Observer (see core.NewObsObserver)
//     that converts calibration lifecycle callbacks into metrics and
//     trace records;
//   - cmd/simcal and cmd/experiments expose -trace, -metrics, and
//     -pprof flags on top of it.
//
// A JSONL trace alone is enough to regenerate the paper's
// best-loss-vs-time convergence curves (Figures 1 and 4): see
// ReplayConvergence.
package obs

import (
	"runtime/debug"
	"time"
)

// Clock is an injectable time source; production code uses time.Now,
// tests substitute a deterministic fake.
type Clock func() time.Time

// BuildVersion returns a git-describe-style identifier for the running
// binary derived from the Go build info: the VCS revision (truncated),
// with a "-dirty" suffix for modified trees, falling back to the main
// module version or "dev" when no VCS stamp is available.
func BuildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev string
	dirty := false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		if v := info.Main.Version; v != "" && v != "(devel)" {
			return v
		}
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "-dirty"
	}
	return rev
}
