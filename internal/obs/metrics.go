package obs

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; updates are single atomic adds.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored: counters never go down).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64-valued metric that can move in either direction.
// The zero value is ready to use and reads as 0.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark (e.g. maximum event-heap depth). A gauge that was
// never written (zero bit pattern) accepts any first value.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if old != 0 && v <= math.Float64frombits(old) {
			return
		}
		if old == 0 && v <= 0 {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// SetMin lowers the gauge to v if v is below the current value (or the
// gauge was never set) — a low-water mark (e.g. best loss so far).
func (g *Gauge) SetMin(v float64) {
	for {
		old := g.bits.Load()
		if old != 0 && v >= math.Float64frombits(old) {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// histBuckets is the number of power-of-two histogram buckets: bucket i
// counts observations v with bitlen(v) == i, i.e. v in [2^(i-1), 2^i).
const histBuckets = 64

// Histogram records an int64-valued distribution (typically
// nanoseconds) in power-of-two buckets. All updates are atomic; the
// zero value is ready to use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // valid when count > 0
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Observe records one value. Negative values are clamped to 0.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if h.count.Add(1) == 1 {
		h.min.Store(v)
		h.max.Store(v)
	} else {
		for {
			old := h.min.Load()
			if v >= old || h.min.CompareAndSwap(old, v) {
				break
			}
		}
		for {
			old := h.max.Load()
			if v <= old || h.max.CompareAndSwap(old, v) {
				break
			}
		}
	}
	h.sum.Add(v)
	i := 0
	for x := v; x > 0; x >>= 1 {
		i++
	}
	h.buckets[i%histBuckets].Add(1)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// HistDump is the full transferable state of a histogram: the
// cumulative counters plus the non-empty power-of-two buckets. It is
// what crosses process boundaries in the distributed telemetry plane —
// a worker ships bucket-count deltas, the coordinator absorbs them into
// a fleet histogram — and it survives JSON (integer bucket indices
// encode as string keys).
type HistDump struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	// Buckets maps bucket index (bitlen of the observation) to count;
	// empty buckets are omitted.
	Buckets map[int]int64 `json:"buckets,omitempty"`
}

// Dump captures the histogram's cumulative state. Concurrent Observe
// calls may be partially reflected, exactly as with Stat.
func (h *Histogram) Dump() HistDump {
	d := HistDump{Count: h.count.Load(), Sum: h.sum.Load()}
	if d.Count == 0 {
		return d
	}
	d.Min = h.min.Load()
	d.Max = h.max.Load()
	for i := range h.buckets {
		if n := h.buckets[i].Load(); n != 0 {
			if d.Buckets == nil {
				d.Buckets = make(map[int]int64)
			}
			d.Buckets[i] = n
		}
	}
	return d
}

// Sub returns the delta d − prev: the observations recorded after prev
// was captured. Min and Max stay cumulative (they cannot be
// differenced), so a delta carries the current running extremes.
func (d HistDump) Sub(prev HistDump) HistDump {
	out := HistDump{
		Count: d.Count - prev.Count,
		Sum:   d.Sum - prev.Sum,
		Min:   d.Min,
		Max:   d.Max,
	}
	for i, n := range d.Buckets {
		if diff := n - prev.Buckets[i]; diff != 0 {
			if out.Buckets == nil {
				out.Buckets = make(map[int]int64)
			}
			out.Buckets[i] = diff
		}
	}
	return out
}

// AbsorbDelta merges a dump delta into the histogram. Negative counts
// and out-of-range bucket indices are dropped (a telemetry peer is not
// trusted to keep the merged state consistent), and Min/Max fold in via
// the same monotone updates Observe uses.
func (h *Histogram) AbsorbDelta(d HistDump) {
	if d.Count <= 0 {
		return
	}
	if h.count.Add(d.Count) == d.Count {
		h.min.Store(d.Min)
		h.max.Store(d.Max)
	} else {
		for {
			old := h.min.Load()
			if d.Min >= old || h.min.CompareAndSwap(old, d.Min) {
				break
			}
		}
		for {
			old := h.max.Load()
			if d.Max <= old || h.max.CompareAndSwap(old, d.Max) {
				break
			}
		}
	}
	if d.Sum > 0 {
		h.sum.Add(d.Sum)
	}
	for i, n := range d.Buckets {
		if i >= 0 && i < histBuckets && n > 0 {
			h.buckets[i].Add(n)
		}
	}
}

// HistStat is a point-in-time summary of a histogram. Quantiles are
// upper bounds of the power-of-two bucket containing the quantile, so
// they are accurate to within a factor of two.
type HistStat struct {
	Count int64 `json:"count"`
	Sum   int64 `json:"sum"`
	Min   int64 `json:"min"`
	Max   int64 `json:"max"`
	P50   int64 `json:"p50"`
	P90   int64 `json:"p90"`
	P99   int64 `json:"p99"`
}

// Mean returns the arithmetic mean of the observations, or 0 when empty.
func (s HistStat) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Stat summarizes the histogram. Concurrent Observe calls may be
// partially reflected; the summary is internally consistent enough for
// reporting.
func (h *Histogram) Stat() HistStat {
	st := HistStat{Count: h.count.Load(), Sum: h.sum.Load()}
	if st.Count == 0 {
		return st
	}
	st.Min = h.min.Load()
	st.Max = h.max.Load()
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	quantile := func(q float64) int64 {
		target := int64(math.Ceil(q * float64(total)))
		if target < 1 {
			target = 1
		}
		var cum int64
		for i := range counts {
			cum += counts[i]
			if cum >= target {
				if i == 0 {
					return clampI64(0, st.Min, st.Max)
				}
				if i >= 63 {
					return st.Max
				}
				return clampI64(int64(1)<<uint(i), st.Min, st.Max)
			}
		}
		return st.Max
	}
	st.P50 = quantile(0.50)
	st.P90 = quantile(0.90)
	st.P99 = quantile(0.99)
	return st
}

// Registry is a named collection of metrics. Handle lookup takes a
// mutex; updates through the returned handles are lock-free, so hot
// paths should resolve handles once (package-level vars) and reuse them.
type Registry struct {
	mu        sync.Mutex
	counters  map[string]*Counter
	gauges    map[string]*Gauge
	hists     map[string]*Histogram
	published bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the framework's built-in
// instrumentation (DES engine, flow kernel, calibration bridge) writes
// to.
func Default() *Registry { return defaultRegistry }

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// HistDumps captures the full bucket state of every registered
// histogram, keyed by name — the source data for telemetry deltas.
func (r *Registry) HistDumps() map[string]HistDump {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistDump, len(r.hists))
	for n, h := range r.hists {
		out[n] = h.Dump()
	}
	return out
}

// Snapshot is a point-in-time copy of every metric in a registry,
// suitable for JSON encoding.
type Snapshot struct {
	Counters   map[string]int64    `json:"counters,omitempty"`
	Gauges     map[string]float64  `json:"gauges,omitempty"`
	Histograms map[string]HistStat `json:"histograms,omitempty"`
}

// Snapshot captures the current value of every registered metric.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistStat, len(r.hists)),
	}
	for n, c := range r.counters {
		s.Counters[n] = c.Value()
	}
	for n, g := range r.gauges {
		s.Gauges[n] = g.Value()
	}
	for n, h := range r.hists {
		s.Histograms[n] = h.Stat()
	}
	return s
}

// WriteText renders the snapshot as aligned name/value lines, sorted by
// metric name. Values of metrics whose name ends in "_ns" are formatted
// as durations.
func (s Snapshot) WriteText(w io.Writer) error {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		var line string
		switch {
		case hasCounter(s, n):
			line = fmt.Sprintf("%-36s %s", n, formatVal(n, s.Counters[n]))
		case hasGauge(s, n):
			line = fmt.Sprintf("%-36s %g", n, s.Gauges[n])
		default:
			h := s.Histograms[n]
			line = fmt.Sprintf("%-36s count=%d mean=%s p50=%s p90=%s max=%s",
				n, h.Count, formatVal(n, int64(h.Mean())), formatVal(n, h.P50),
				formatVal(n, h.P90), formatVal(n, h.Max))
		}
		if _, err := fmt.Fprintln(w, line); err != nil {
			return err
		}
	}
	return nil
}

func hasCounter(s Snapshot, n string) bool { _, ok := s.Counters[n]; return ok }
func hasGauge(s Snapshot, n string) bool   { _, ok := s.Gauges[n]; return ok }

// clampI64 bounds v to [lo, hi].
func clampI64(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// formatVal renders nanosecond-named metrics as human durations.
func formatVal(name string, v int64) string {
	if len(name) > 3 && name[len(name)-3:] == "_ns" {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d", v)
}

// PublishExpvar exposes the registry under the given expvar name (for
// the -pprof debug server's /debug/vars endpoint). Publishing the same
// registry twice is a no-op; distinct registries need distinct names.
func (r *Registry) PublishExpvar(name string) {
	r.mu.Lock()
	already := r.published
	r.published = true
	r.mu.Unlock()
	if already || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
