package obs

import (
	"bytes"
	"math"
	"testing"
)

func TestHistogramEmptyStat(t *testing.T) {
	var h Histogram
	st := h.Stat()
	if st.Count != 0 || st.Sum != 0 || st.Min != 0 || st.Max != 0 ||
		st.P50 != 0 || st.P90 != 0 || st.P99 != 0 {
		t.Errorf("empty histogram stat = %+v, want all zero", st)
	}
	if st.Mean() != 0 {
		t.Errorf("empty histogram mean = %v, want 0", st.Mean())
	}
	d := h.Dump()
	if d.Count != 0 || len(d.Buckets) != 0 {
		t.Errorf("empty histogram dump = %+v, want empty", d)
	}
}

func TestHistogramSingleSample(t *testing.T) {
	var h Histogram
	h.Observe(1000)
	st := h.Stat()
	if st.Count != 1 || st.Sum != 1000 || st.Min != 1000 || st.Max != 1000 {
		t.Fatalf("single-sample stat = %+v", st)
	}
	// Every quantile of a single observation is that observation
	// (bucket upper bounds are clamped to [min, max]).
	if st.P50 != 1000 || st.P90 != 1000 || st.P99 != 1000 {
		t.Errorf("single-sample quantiles = %d/%d/%d, want 1000 each", st.P50, st.P90, st.P99)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(math.MaxInt64)
	h.Observe(-5) // clamps to 0
	h.Observe(0)
	st := h.Stat()
	if st.Count != 3 {
		t.Fatalf("count = %d, want 3", st.Count)
	}
	if st.Min != 0 {
		t.Errorf("min = %d, want 0 (negative observation clamps)", st.Min)
	}
	if st.Max != math.MaxInt64 {
		t.Errorf("max = %d, want MaxInt64", st.Max)
	}
	if st.P99 != math.MaxInt64 {
		t.Errorf("p99 = %d, want MaxInt64 (top bucket reports max)", st.P99)
	}
}

func TestHistDumpSubAndAbsorbRoundTrip(t *testing.T) {
	var src Histogram
	for _, v := range []int64{1, 2, 3, 100, 5000, 1 << 40} {
		src.Observe(v)
	}
	checkpoint := src.Dump()
	for _, v := range []int64{7, 8, 9, 1 << 50} {
		src.Observe(v)
	}
	delta := src.Dump().Sub(checkpoint)
	if delta.Count != 4 {
		t.Fatalf("delta count = %d, want 4", delta.Count)
	}

	// Absorbing the checkpoint and then the delta reproduces the
	// source's distribution exactly.
	var dst Histogram
	dst.AbsorbDelta(checkpoint)
	dst.AbsorbDelta(delta)
	if got, want := dst.Stat(), src.Stat(); got != want {
		t.Errorf("absorbed stat = %+v, want %+v", got, want)
	}
}

func TestAbsorbDeltaRejectsHostileInput(t *testing.T) {
	var h Histogram
	h.Observe(100)
	before := h.Stat()
	// Negative counts and out-of-range bucket indices come from an
	// untrusted peer; they must not corrupt the histogram.
	h.AbsorbDelta(HistDump{Count: -10, Sum: -999, Buckets: map[int]int64{-1: 5, 9999: 5, 3: -2}})
	if got := h.Stat(); got != before {
		t.Errorf("hostile delta changed stat: %+v -> %+v", before, got)
	}
}

// TestSnapshotDeterminism builds two identical registries and demands
// byte-identical text and Prometheus renderings — the property CI's
// exposition checks and trace diffs rely on.
func TestSnapshotDeterminism(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		r.Counter("b.count").Add(3)
		r.Counter("a.count").Add(1)
		r.Gauge(LabeledName("g.val", "worker", "w2")).Set(2.5)
		r.Gauge(LabeledName("g.val", "worker", "w1")).Set(1.5)
		r.Gauge("g.inf").Set(math.Inf(1))
		h := r.Histogram("h.ns")
		for _, v := range []int64{5, 50, 500} {
			h.Observe(v)
		}
		return r
	}
	var text1, text2, prom1, prom2 bytes.Buffer
	if err := build().Snapshot().WriteText(&text1); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WriteText(&text2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(text1.Bytes(), text2.Bytes()) {
		t.Errorf("WriteText not deterministic:\n%s\nvs\n%s", text1.String(), text2.String())
	}
	if err := build().Snapshot().WritePrometheus(&prom1); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot().WritePrometheus(&prom2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(prom1.Bytes(), prom2.Bytes()) {
		t.Errorf("WritePrometheus not deterministic:\n%s\nvs\n%s", prom1.String(), prom2.String())
	}
}
