package obs

import (
	"context"
	"encoding/json"
	"expvar"
	"net"
	"net/http"
	httppprof "net/http/pprof"
	"os"
	"runtime"
	"time"
)

// Server is the live observability endpoint every binary can mount:
//
//	/metrics      Prometheus text exposition of a Registry (deterministic,
//	              sorted — see Snapshot.WritePrometheus)
//	/healthz      liveness probe, always "ok"
//	/statusz      JSON snapshot: build/version/uptime, the well-known
//	              calibration metrics, and the caller's Status payload
//	              (e.g. dist.Coordinator.Status: connected workers, lease
//	              queue depth, clock offsets)
//	/debug/vars   expvar JSON (including registries published with
//	              PublishExpvar)
//	/debug/pprof  the standard pprof handlers
//
// Unlike a bare http.ListenAndServe, StartServer binds synchronously —
// a bind failure surfaces to the caller instead of being a stderr note
// from a forgotten goroutine — and Shutdown drains in-flight requests
// under a caller context.
type Server struct {
	ln    net.Listener
	srv   *http.Server
	start time.Time
}

// ServerConfig configures a Server. The zero value serves the default
// registry with no extra status payload.
type ServerConfig struct {
	// Registry is the metrics source for /metrics and /statusz; nil
	// means Default().
	Registry *Registry
	// Refresh, when non-nil, runs before every /metrics and /statusz
	// snapshot — the hook a coordinator uses to bring lazily computed
	// fleet gauges (heartbeat ages, in-flight leases) up to date.
	Refresh func()
	// Status, when non-nil, contributes the "status" member of the
	// /statusz document. The returned value must be JSON-encodable;
	// non-finite floats are replaced by the trace sentinels.
	Status func() any
	// Jobs, when non-nil, contributes the "jobs" member of the
	// /statusz document — the calibration job server's view of
	// submitted/running/finished jobs.
	Jobs func() any
	// Mount, when non-nil, registers additional routes on the server's
	// mux before the standard endpoints — the hook the calibration job
	// server uses to expose its /v1/jobs API on the same plane. It must
	// not claim the standard paths (/metrics, /statusz, /healthz,
	// /debug/...).
	Mount func(mux *http.ServeMux)
}

// StartServer binds addr and serves the observability endpoints in a
// background goroutine. It returns once the listener is bound, so "the
// port is taken" is an error the process can exit non-zero on, not a
// log line. Close the server with Shutdown.
func StartServer(addr string, cfg ServerConfig) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, start: time.Now()}
	reg := cfg.Registry
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	if cfg.Mount != nil {
		cfg.Mount(mux)
	}
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Refresh != nil {
			cfg.Refresh()
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.Snapshot().WritePrometheus(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Refresh != nil {
			cfg.Refresh()
		}
		doc := map[string]any{
			"version":  BuildVersion(),
			"pid":      os.Getpid(),
			"go":       runtime.Version(),
			"uptime_s": time.Since(s.start).Seconds(),
		}
		snap := reg.Snapshot()
		if cal := calibrationStatus(snap, time.Now()); cal != nil {
			doc["calibration"] = cal
		}
		if cfg.Status != nil {
			if v := cfg.Status(); v != nil {
				doc["status"] = v
			}
		}
		if cfg.Jobs != nil {
			if v := cfg.Jobs(); v != nil {
				doc["jobs"] = v
			}
		}
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", httppprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", httppprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", httppprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", httppprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", httppprof.Trace)
	s.srv = &http.Server{Handler: mux}
	go s.srv.Serve(ln) // returns http.ErrServerClosed on Shutdown
	return s, nil
}

// Addr reports the bound address (resolving ":0" to the actual port).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Shutdown gracefully stops the server: the listener closes immediately
// and in-flight requests drain until ctx expires.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.srv.Shutdown(ctx)
}

// calibrationStatus extracts the well-known calibration metrics (the
// names core.NewObsObserver registers) from a snapshot for /statusz, or
// nil when none are present — e.g. on a worker, whose registry carries
// only worker.* and simulator metrics. The event-name constants in
// replay.go are the same kind of cross-package contract.
func calibrationStatus(s Snapshot, now time.Time) map[string]any {
	out := make(map[string]any)
	if v, ok := s.Counters["cal.evaluations"]; ok {
		out["evaluations"] = v
	}
	if v, ok := s.Counters["cal.batches"]; ok {
		out["bo_iterations"] = v
	}
	if v, ok := s.Gauges["cal.best_loss"]; ok {
		if sentinel, bad := nonFiniteSentinel(v); bad {
			out["best_loss"] = sentinel
		} else {
			out["best_loss"] = v
		}
	}
	if v, ok := s.Gauges["cal.checkpoint_unix_ns"]; ok && v > 0 {
		out["checkpoint_age_s"] = float64(now.UnixNano())/1e9 - v/1e9
	}
	if len(out) == 0 {
		return nil
	}
	return out
}
