package obs

import (
	"bytes"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestLabeledName(t *testing.T) {
	cases := []struct{ name, key, value, want string }{
		{"m", "worker", "w1", `m{worker="w1"}`},
		{`m{a="1"}`, "b", "2", `m{a="1",b="2"}`},
		{"m{}", "a", "1", `m{a="1"}`},
		{"m", "k", `a"b\c` + "\n", `m{k="a\"b\\c\n"}`},
	}
	for _, c := range cases {
		if got := LabeledName(c.name, c.key, c.value); got != c.want {
			t.Errorf("LabeledName(%q, %q, %q) = %q, want %q", c.name, c.key, c.value, got, c.want)
		}
	}
}

func TestLabeledNameRoundTrips(t *testing.T) {
	name := LabeledName(LabeledName("worker.eval_ns", "worker", `we"ird\name`), "zone", "a,b")
	base, pairs := splitLabeled(name)
	if base != "worker.eval_ns" {
		t.Fatalf("base = %q", base)
	}
	if len(pairs) != 2 || pairs[0].value != `we"ird\name` || pairs[1].value != "a,b" {
		t.Fatalf("pairs = %+v", pairs)
	}
}

func TestWritePrometheusRendering(t *testing.T) {
	r := NewRegistry()
	r.Counter(LabeledName("worker.evals_ok", "worker", "w1")).Add(5)
	r.Counter(LabeledName("worker.evals_ok", "worker", "w2")).Add(7)
	r.Gauge("cal.best_loss").Set(math.Inf(1))
	h := r.Histogram(LabeledName("worker.eval_ns", "worker", "w1"))
	h.Observe(100)
	h.Observe(200)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`# TYPE worker_evals_ok counter`,
		`worker_evals_ok{worker="w1"} 5`,
		`worker_evals_ok{worker="w2"} 7`,
		`cal_best_loss +Inf`,
		`# TYPE worker_eval_ns summary`,
		`worker_eval_ns{worker="w1",quantile="0.5"}`,
		`worker_eval_ns_count{worker="w1"} 2`,
		`worker_eval_ns_sum{worker="w1"} 300`,
		`worker_eval_ns_min{worker="w1"} 100`,
		`worker_eval_ns_max{worker="w1"} 200`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition lacks %q:\n%s", want, out)
		}
	}
	// Within a family, the w1 sample sorts before w2.
	if strings.Index(out, `worker="w1"} 5`) > strings.Index(out, `worker="w2"} 7`) {
		t.Error("samples not sorted within family")
	}
}

func TestWritePrometheusOpaqueFallback(t *testing.T) {
	r := NewRegistry()
	// A name with a malformed label block is sanitized whole instead of
	// being emitted as broken exposition syntax.
	r.Counter(`bad{name`).Add(1)
	r.Counter(`worse{k=unquoted}`).Add(2)
	var buf bytes.Buffer
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "bad_name 1") || !strings.Contains(out, "worse_k_unquoted_ 2") {
		t.Errorf("opaque fallback rendering:\n%s", out)
	}
}

// validatePromExposition checks every line of a rendering: TYPE lines
// name a valid family, sample lines re-parse with the package's own
// label parser and carry a numeric value.
func validatePromExposition(t *testing.T, out string) {
	t.Helper()
	nameRe := regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	for _, line := range strings.Split(out, "\n") {
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			parts := strings.Fields(line)
			if len(parts) != 4 || !nameRe.MatchString(parts[2]) {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch parts[3] {
			case "counter", "gauge", "summary", "untyped":
			default:
				t.Fatalf("bad family type in %q", line)
			}
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("sample line without value: %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		switch val {
		case "+Inf", "-Inf", "NaN":
		default:
			if _, err := strconv.ParseFloat(val, 64); err != nil {
				t.Fatalf("sample %q: bad value %q", line, val)
			}
		}
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if !strings.HasSuffix(name, "}") {
				t.Fatalf("sample %q: unterminated label block", line)
			}
			if !nameRe.MatchString(name[:i]) {
				t.Fatalf("sample %q: bad metric name %q", line, name[:i])
			}
			pairs, ok := parseLabelPairs(name[i+1 : len(name)-1])
			if !ok {
				t.Fatalf("sample %q: label block does not re-parse", line)
			}
			labelRe := regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
			for _, p := range pairs {
				if !labelRe.MatchString(p.key) {
					t.Fatalf("sample %q: bad label key %q", line, p.key)
				}
			}
		} else if !nameRe.MatchString(name) {
			t.Fatalf("sample %q: bad metric name", line)
		}
	}
}

// FuzzWritePrometheus feeds hostile metric names, label values, and
// values through the writer: whatever the registry holds, the rendering
// must be valid exposition text and never panic.
func FuzzWritePrometheus(f *testing.F) {
	f.Add("worker.eval_ns", "w1", 1.5)
	f.Add(`a{b="c"}`, `quote"back\slash`, math.Inf(1))
	f.Add("{", "\n", math.NaN())
	f.Add(`x{y="`, "unterminated", -0.0)
	f.Add("metric with spaces", "née", 1e308)
	f.Add("", "", 0.0)
	f.Fuzz(func(t *testing.T, name, labelVal string, v float64) {
		r := NewRegistry()
		r.Counter(name).Add(3)
		r.Gauge(LabeledName(name, "worker", labelVal)).Set(v)
		h := r.Histogram(LabeledName("h", "k", labelVal))
		h.Observe(int64(len(name)))
		var buf bytes.Buffer
		if err := r.Snapshot().WritePrometheus(&buf); err != nil {
			t.Fatalf("write: %v", err)
		}
		validatePromExposition(t, buf.String())
	})
}
