package obs

import (
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestServerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("cal.evaluations").Add(42)
	reg.Counter("cal.batches").Add(6)
	reg.Gauge("cal.best_loss").Set(1.25)
	refreshed := 0
	srv, err := StartServer("127.0.0.1:0", ServerConfig{
		Registry: reg,
		Refresh:  func() { refreshed++ },
		Status:   func() any { return map[string]any{"queue_depth": 3} },
		Jobs:     func() any { return map[string]any{"running": 2} },
		Mount: func(mux *http.ServeMux) {
			mux.HandleFunc("GET /v1/ping", func(w http.ResponseWriter, _ *http.Request) {
				w.Write([]byte("pong\n"))
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	base := "http://" + srv.Addr()

	get := func(path string) (string, *http.Response) {
		t.Helper()
		resp, err := http.Get(base + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: reading body: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, b)
		}
		return string(b), resp
	}

	body, _ := get("/healthz")
	if body != "ok\n" {
		t.Errorf("/healthz = %q", body)
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ct)
	}
	if !strings.Contains(body, "cal_evaluations 42") {
		t.Errorf("/metrics lacks cal_evaluations:\n%s", body)
	}

	body, resp = get("/statusz")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Errorf("/statusz content-type = %q", ct)
	}
	var doc struct {
		Version     string         `json:"version"`
		UptimeS     float64        `json:"uptime_s"`
		Calibration map[string]any `json:"calibration"`
		Status      map[string]any `json:"status"`
		Jobs        map[string]any `json:"jobs"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/statusz does not parse: %v\n%s", err, body)
	}
	if doc.Version == "" {
		t.Error("/statusz lacks version")
	}
	if doc.Calibration["evaluations"] != float64(42) || doc.Calibration["bo_iterations"] != float64(6) {
		t.Errorf("/statusz calibration = %v", doc.Calibration)
	}
	if doc.Calibration["best_loss"] != 1.25 {
		t.Errorf("/statusz best_loss = %v", doc.Calibration["best_loss"])
	}
	if doc.Status["queue_depth"] != float64(3) {
		t.Errorf("/statusz status = %v", doc.Status)
	}
	if doc.Jobs["running"] != float64(2) {
		t.Errorf("/statusz jobs = %v", doc.Jobs)
	}
	if refreshed < 2 { // /metrics and /statusz each refresh
		t.Errorf("refresh hook ran %d times, want >= 2", refreshed)
	}

	// Mounted routes share the plane with the standard endpoints.
	body, _ = get("/v1/ping")
	if body != "pong\n" {
		t.Errorf("/v1/ping = %q", body)
	}
}

func TestStartServerBindFailure(t *testing.T) {
	srv, err := StartServer("127.0.0.1:0", ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	}()
	// Binding the same port again must fail synchronously — the error a
	// CLI turns into a non-zero exit instead of a background log line.
	if dup, err := StartServer(srv.Addr(), ServerConfig{}); err == nil {
		dup.Shutdown(context.Background())
		t.Fatal("second bind on the same address succeeded")
	}
}

func TestCalibrationStatusNonFinite(t *testing.T) {
	reg := NewRegistry()
	reg.Gauge("cal.best_loss").Set(math.Inf(1))
	s := calibrationStatus(reg.Snapshot(), time.Now())
	if s["best_loss"] != "Inf" {
		t.Errorf("non-finite best_loss = %v, want sentinel \"Inf\"", s["best_loss"])
	}
}
