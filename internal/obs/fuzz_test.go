package obs

import (
	"bytes"
	"math"
	"testing"
	"time"
)

// FuzzReadTrace feeds arbitrary bytes through the full trace-replay
// path: decode, manifest extraction, and convergence reconstruction.
// Traces come off disk — possibly truncated mid-line by a killed run —
// so the contract is errors, never panics, and the non-finite loss
// sentinels must decode without upsetting the replay.
func FuzzReadTrace(f *testing.F) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetClock(func() time.Time { return time.Unix(1700000000, 0) })
	tr.EmitManifest(Manifest{Algorithm: "RAND", Space: []string{"x"}, Seed: 1, Version: "fuzz"})
	tr.Emit(EventEvalCompleted, Fields{"loss": 2.5, "elapsed_ns": float64(time.Millisecond)})
	tr.Emit(EventEvalCompleted, Fields{"loss": math.Inf(1), "elapsed_ns": float64(2 * time.Millisecond)})
	tr.Emit(EventEvalCompleted, Fields{"loss": math.NaN(), "elapsed_s": 0.003})
	tr.Emit(EventPanicRecovered, Fields{"error": "boom"})
	if err := tr.Flush(); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // torn mid-line
	f.Add([]byte(`{"name":"eval_completed","fields":{"loss":"-Inf","elapsed_s":1}}` + "\n"))
	f.Add([]byte(`{"name":"eval_completed","fields":{}}` + "\n"))
	f.Add([]byte(`{"name":"eval_completed","fields":{"loss":[1,2]}}` + "\n"))
	f.Add([]byte("\n\nnot json\n"))
	f.Add([]byte(""))
	f.Fuzz(func(t *testing.T, data []byte) {
		recs, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		TraceManifest(recs)
		points, err := ReplayConvergenceRecords(recs)
		if err != nil {
			return
		}
		// The replayed curve is a running minimum: NaN-free (NaN losses
		// normalize to +Inf) and monotone non-increasing.
		for i, p := range points {
			if math.IsNaN(p.Loss) {
				t.Fatalf("NaN leaked into the best-loss curve at point %d", i)
			}
			if i > 0 && p.Loss > points[i-1].Loss {
				t.Fatalf("best-loss curve increased at point %d: %v -> %v", i, points[i-1].Loss, p.Loss)
			}
		}
	})
}
