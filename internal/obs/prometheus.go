package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// This file renders a Snapshot in the Prometheus text exposition format
// (version 0.0.4). The output is deterministic: metric families are
// sorted by name, samples within a family are sorted, and identical
// snapshots render to identical bytes — CI and tests diff the output
// directly.
//
// Metric names in the registry may carry a label suffix produced by
// LabeledName, e.g. `worker.eval_ns{worker="w1"}`. The writer splits
// the label block off, sanitizes the base name to the Prometheus
// grammar (dots become underscores), and re-escapes label values. A
// name whose label block does not parse is treated as one opaque name
// and sanitized whole, so the writer emits valid exposition text for
// any input.

// LabeledName returns name with a `key="value"` label attached:
// `name{key="value"}`, or with the label appended inside an existing
// label block. The value is escaped per the Prometheus text format
// (backslash, double quote, newline).
func LabeledName(name, key, value string) string {
	pair := key + `="` + escapeLabelValue(value) + `"`
	if strings.HasSuffix(name, "}") {
		if i := strings.IndexByte(name, '{'); i >= 0 {
			if i == len(name)-2 { // empty label block: name{}
				return name[:len(name)-1] + pair + "}"
			}
			return name[:len(name)-1] + "," + pair + "}"
		}
	}
	return name + "{" + pair + "}"
}

// escapeLabelValue escapes a label value for the text exposition
// format.
func escapeLabelValue(v string) string {
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelPair is one parsed key="value" pair (value unescaped).
type labelPair struct {
	key, value string
}

// renderLabels renders pairs as a `{k="v",...}` block, or "" when
// empty. Keys are sanitized, values escaped.
func renderLabels(pairs []labelPair) string {
	if len(pairs) == 0 {
		return ""
	}
	parts := make([]string, len(pairs))
	for i, p := range pairs {
		parts[i] = sanitizeLabelKey(p.key) + `="` + escapeLabelValue(p.value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// splitLabeled splits a registry name into its base name and parsed
// label pairs. Names without a well-formed label block return the whole
// name as base with nil pairs.
func splitLabeled(name string) (string, []labelPair) {
	i := strings.IndexByte(name, '{')
	if i < 0 || !strings.HasSuffix(name, "}") {
		return name, nil
	}
	pairs, ok := parseLabelPairs(name[i+1 : len(name)-1])
	if !ok {
		return name, nil
	}
	return name[:i], pairs
}

// parseLabelPairs parses `k="v",k2="v2"` with escaped values. It
// reports false for anything malformed, in which case the caller falls
// back to treating the whole name as opaque.
func parseLabelPairs(s string) ([]labelPair, bool) {
	if s == "" {
		return nil, true
	}
	var pairs []labelPair
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 || eq+1 >= len(s) || s[eq+1] != '"' {
			return nil, false
		}
		key := s[:eq]
		rest := s[eq+2:]
		var val strings.Builder
		closed := false
		j := 0
		for j < len(rest) {
			c := rest[j]
			if c == '\\' {
				if j+1 >= len(rest) {
					return nil, false
				}
				switch rest[j+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, false
				}
				j += 2
				continue
			}
			if c == '"' {
				closed = true
				j++
				break
			}
			if c == '\n' {
				return nil, false
			}
			val.WriteByte(c)
			j++
		}
		if !closed {
			return nil, false
		}
		pairs = append(pairs, labelPair{key: key, value: val.String()})
		s = rest[j:]
		if s == "" {
			break
		}
		if s[0] != ',' || len(s) == 1 {
			return nil, false
		}
		s = s[1:]
	}
	return pairs, true
}

// sanitizeMetricName maps an arbitrary string onto the Prometheus
// metric-name grammar [a-zA-Z_:][a-zA-Z0-9_:]*; every foreign byte
// becomes an underscore. The registry's dotted names (cal.eval_ns)
// become underscored (cal_eval_ns).
func sanitizeMetricName(s string) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i := 0; i < len(b); i++ {
		c := b[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

// sanitizeLabelKey maps an arbitrary string onto the label-name grammar
// [a-zA-Z_][a-zA-Z0-9_]*.
func sanitizeLabelKey(s string) string {
	if s == "" {
		return "_"
	}
	b := []byte(s)
	for i := 0; i < len(b); i++ {
		c := b[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			b[i] = '_'
		}
	}
	return string(b)
}

// promFloat renders a float sample value; non-finite values use the
// exposition format's +Inf/-Inf/NaN literals.
func promFloat(f float64) string {
	switch {
	case math.IsInf(f, 1):
		return "+Inf"
	case math.IsInf(f, -1):
		return "-Inf"
	case math.IsNaN(f):
		return "NaN"
	}
	return strconv.FormatFloat(f, 'g', -1, 64)
}

// promFamily collects one metric family's type and sample lines.
type promFamily struct {
	typ     string
	samples []string
}

// promWriter accumulates families before the final sorted emission.
type promWriter struct {
	families map[string]*promFamily
}

// add records one sample line under a family, demoting the family to
// untyped when samples of different kinds collide on one name (which
// can happen after sanitization folds distinct registry names
// together).
func (pw *promWriter) add(family, typ, sample string) {
	f := pw.families[family]
	if f == nil {
		f = &promFamily{typ: typ}
		pw.families[family] = f
	} else if f.typ != typ {
		f.typ = "untyped"
	}
	f.samples = append(f.samples, sample)
}

// WritePrometheus renders the snapshot in the Prometheus text
// exposition format: counters and gauges as single samples, histograms
// as summaries (`{quantile="..."}` plus `_sum` and `_count`) with the
// running extremes as companion `_min`/`_max` gauges. Output is sorted
// and deterministic.
func (s Snapshot) WritePrometheus(w io.Writer) error {
	pw := &promWriter{families: make(map[string]*promFamily)}
	for name, v := range s.Counters {
		base, labels := splitLabeled(name)
		fam := sanitizeMetricName(base)
		pw.add(fam, "counter", fam+renderLabels(labels)+" "+strconv.FormatInt(v, 10))
	}
	for name, v := range s.Gauges {
		base, labels := splitLabeled(name)
		fam := sanitizeMetricName(base)
		pw.add(fam, "gauge", fam+renderLabels(labels)+" "+promFloat(v))
	}
	for name, h := range s.Histograms {
		base, labels := splitLabeled(name)
		fam := sanitizeMetricName(base)
		for _, q := range []struct {
			q string
			v int64
		}{{"0.5", h.P50}, {"0.9", h.P90}, {"0.99", h.P99}} {
			ql := append(append([]labelPair(nil), labels...), labelPair{key: "quantile", value: q.q})
			pw.add(fam, "summary", fam+renderLabels(ql)+" "+strconv.FormatInt(q.v, 10))
		}
		lb := renderLabels(labels)
		pw.add(fam, "summary", fam+"_sum"+lb+" "+strconv.FormatInt(h.Sum, 10))
		pw.add(fam, "summary", fam+"_count"+lb+" "+strconv.FormatInt(h.Count, 10))
		pw.add(fam+"_min", "gauge", fam+"_min"+lb+" "+strconv.FormatInt(h.Min, 10))
		pw.add(fam+"_max", "gauge", fam+"_max"+lb+" "+strconv.FormatInt(h.Max, 10))
	}
	names := make([]string, 0, len(pw.families))
	for n := range pw.families {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := pw.families[n]
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", n, f.typ); err != nil {
			return err
		}
		sort.Strings(f.samples)
		for _, line := range f.samples {
			if _, err := fmt.Fprintln(w, line); err != nil {
				return err
			}
		}
	}
	return nil
}
