package mpi

import (
	"fmt"
	"math"
	"testing"

	"simcal/internal/platform"
)

// testFabric builds nodes on a single shared backbone with the given
// bandwidth and returns the fabric.
func testFabric(t *testing.T, nodes, ranksPerNode int, bw float64, cfg FabricConfig) *Fabric {
	t.Helper()
	p := platform.New()
	hosts := make([]*platform.Host, nodes)
	for i := range hosts {
		hosts[i] = p.AddHost(platform.NewHost(fmt.Sprintf("n%d", i), ranksPerNode, 1e9))
	}
	bb := platform.NewLink("bb", bw, 0)
	platform.SharedLinkTopology(p, hosts, bb)
	ps := platform.NewSim(p)
	cfg.Nodes = nodes
	cfg.RanksPerNode = ranksPerNode
	f, err := NewFabric(ps, hosts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func unitProtocol() Protocol {
	return Protocol{Factors: [3]float64{1, 1, 1}, ChangePoints: [2]float64{8192, 131072}}
}

func simpleCfg(nic float64) FabricConfig {
	return FabricConfig{NodeModel: SimpleNode, NICBW: nic, Protocol: unitProtocol()}
}

func TestPingPongRateEqualsBandwidth(t *testing.T) {
	// 2 nodes × 1 rank, backbone 1000 B/s, NIC huge: ping-pong is
	// strictly serial, so aggregate rate == backbone bandwidth.
	f := testFabric(t, 2, 1, 1000, simpleCfg(1e12))
	rate, err := Run(f, RunSpec{Benchmark: PingPong, MsgBytes: 1 << 20, Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-1000) > 1 {
		t.Errorf("rate = %v, want ~1000", rate)
	}
}

func TestProtocolFactorScalesRate(t *testing.T) {
	cfg := simpleCfg(1e12)
	cfg.Protocol.Factors = [3]float64{1, 1, 0.5}
	f := testFabric(t, 2, 1, 1000, cfg)
	rate, err := Run(f, RunSpec{Benchmark: PingPong, MsgBytes: 1 << 20, Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-500) > 1 {
		t.Errorf("rate with factor 0.5 = %v, want ~500", rate)
	}
}

func TestProtocolChangePoints(t *testing.T) {
	p := Protocol{Factors: [3]float64{0.2, 0.6, 1.0}, ChangePoints: [2]float64{8192, 131072}}
	if p.Factor(1024) != 0.2 || p.Factor(8192) != 0.6 || p.Factor(1<<20) != 1.0 {
		t.Error("Factor banding wrong")
	}
	if p.Factor(131071) != 0.6 || p.Factor(131072) != 1.0 {
		t.Error("Factor boundary wrong")
	}
}

func TestProtocolValidate(t *testing.T) {
	bad := Protocol{Factors: [3]float64{0, 1, 1}}
	if bad.Validate() == nil {
		t.Error("zero factor accepted")
	}
	bad = Protocol{Factors: [3]float64{1, 1, 1}, ChangePoints: [2]float64{100, 50}}
	if bad.Validate() == nil {
		t.Error("disordered change points accepted")
	}
	if unitProtocol().Validate() != nil {
		t.Error("valid protocol rejected")
	}
}

func TestLatencyLowersSmallMessageRate(t *testing.T) {
	cfg := simpleCfg(1e12)
	cfg.HostLatency = 0.001
	f := testFabric(t, 2, 1, 1e9, cfg)
	small, err := Run(f, RunSpec{Benchmark: PingPong, MsgBytes: 1024, Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	f2 := testFabric(t, 2, 1, 1e9, cfg)
	large, err := Run(f2, RunSpec{Benchmark: PingPong, MsgBytes: 1 << 22, Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if small >= large {
		t.Errorf("small-message rate %v should be below large-message rate %v under latency", small, large)
	}
}

func TestNICBottleneck(t *testing.T) {
	// Backbone is huge, NIC is 500 B/s: rate capped by NIC.
	f := testFabric(t, 2, 1, 1e12, simpleCfg(500))
	rate, err := Run(f, RunSpec{Benchmark: PingPong, MsgBytes: 1 << 20, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-500) > 1 {
		t.Errorf("rate = %v, want ~500 (NIC-bound)", rate)
	}
}

func TestPingPingConcurrentSharing(t *testing.T) {
	// PingPing sends both directions at once over the shared backbone:
	// same aggregate rate as PingPong on a single shared link, but the
	// two must at least both complete and give a positive rate.
	f := testFabric(t, 2, 1, 1000, simpleCfg(1e12))
	rate, err := Run(f, RunSpec{Benchmark: PingPing, MsgBytes: 1 << 18, Rounds: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rate-1000) > 1 {
		t.Errorf("PingPing aggregate rate = %v, want ~1000", rate)
	}
}

func TestComplexNodeXBusUsedForCrossSocket(t *testing.T) {
	cfg := FabricConfig{
		NodeModel: ComplexNode,
		XBusBW:    100, PCIeBW: 1e12,
		Protocol: unitProtocol(),
	}
	f := testFabric(t, 2, 6, 1e12, cfg)
	// Rank 0 (socket 0) → rank 4 (socket 1), same node: X-Bus limited.
	var done float64 = -1
	f.Send("x", 0, 4, 1000, func() { done = f.ps.Engine.Now() })
	if _, err := f.ps.Engine.Run(1000); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-10) > 1e-9 {
		t.Errorf("cross-socket transfer done at %v, want 10 (1000B / 100B/s X-Bus)", done)
	}
}

func TestComplexNodeSameSocketIsLatencyOnly(t *testing.T) {
	cfg := FabricConfig{
		NodeModel: ComplexNode,
		XBusBW:    1, PCIeBW: 1,
		HostLatency: 0.5,
		Protocol:    unitProtocol(),
	}
	f := testFabric(t, 2, 6, 1, cfg)
	var done float64 = -1
	// Ranks 0 and 1 share socket 0 of node 0.
	f.Send("x", 0, 1, 1e9, func() { done = f.ps.Engine.Now() })
	if _, err := f.ps.Engine.Run(1000); err != nil {
		t.Fatal(err)
	}
	if math.Abs(done-0.5) > 1e-9 {
		t.Errorf("same-socket transfer done at %v, want 0.5 (latency only)", done)
	}
}

func TestComplexNodePCIeBottleneck(t *testing.T) {
	cfg := FabricConfig{
		NodeModel: ComplexNode,
		XBusBW:    1e12, PCIeBW: 250,
		Protocol: unitProtocol(),
	}
	f := testFabric(t, 2, 6, 1e12, cfg)
	rate, err := Run(f, RunSpec{Benchmark: PingPong, MsgBytes: 1 << 20, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 6 pairs all inter-node; each message crosses src and dst PCIe.
	// With 3 ranks per socket, concurrent messages share PCIe; ping-pong
	// is serial per pair, so the aggregate rate is bounded by the two
	// nodes' PCIe capacity (2 sockets × 250 per node).
	if rate > 1001 {
		t.Errorf("rate = %v, want <= ~1000 (PCIe-bound)", rate)
	}
	if rate < 250 {
		t.Errorf("rate = %v, implausibly low", rate)
	}
}

func TestBiRandomDeterministicPerSeed(t *testing.T) {
	mk := func(seed int64) float64 {
		f := testFabric(t, 4, 6, 1e6, simpleCfg(1e9))
		rate, err := Run(f, RunSpec{Benchmark: BiRandom, MsgBytes: 1 << 16, Rounds: 3, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		return rate
	}
	if mk(1) != mk(1) {
		t.Error("BiRandom not deterministic for equal seeds")
	}
	if mk(1) == mk(2) {
		t.Log("note: different seeds gave identical rate (possible on symmetric topology)")
	}
}

func TestStencilRunsAndBalances(t *testing.T) {
	f := testFabric(t, 4, 6, 1e6, simpleCfg(1e9))
	rate, err := Run(f, RunSpec{Benchmark: Stencil, MsgBytes: 1 << 14, Rounds: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rate <= 0 {
		t.Errorf("stencil rate = %v", rate)
	}
}

func TestAllBenchmarksPositiveRates(t *testing.T) {
	for _, b := range AllBenchmarks {
		f := testFabric(t, 3, 6, 1e6, simpleCfg(1e9))
		rate, err := Run(f, RunSpec{Benchmark: b, MsgBytes: 1 << 12, Rounds: 2, Seed: 7})
		if err != nil {
			t.Fatalf("%s: %v", b, err)
		}
		if rate <= 0 || math.IsInf(rate, 0) || math.IsNaN(rate) {
			t.Errorf("%s: bad rate %v", b, rate)
		}
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	f := testFabric(t, 2, 1, 1000, simpleCfg(1e9))
	if _, err := Run(f, RunSpec{Benchmark: PingPong, MsgBytes: 0}); err == nil {
		t.Error("zero message size accepted")
	}
	if _, err := Run(f, RunSpec{Benchmark: "bogus", MsgBytes: 1024}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestNewFabricValidation(t *testing.T) {
	p := platform.New()
	h := p.AddHost(platform.NewHost("n0", 6, 1e9))
	ps := platform.NewSim(p)
	if _, err := NewFabric(ps, []*platform.Host{h}, FabricConfig{Nodes: 2, NodeModel: SimpleNode, NICBW: 1, Protocol: unitProtocol()}); err == nil {
		t.Error("host/node count mismatch accepted")
	}
	if _, err := NewFabric(ps, []*platform.Host{h}, FabricConfig{Nodes: 1, NodeModel: SimpleNode, Protocol: unitProtocol()}); err == nil {
		t.Error("zero NIC bandwidth accepted")
	}
	if _, err := NewFabric(ps, []*platform.Host{h}, FabricConfig{Nodes: 1, NodeModel: ComplexNode, XBusBW: 1, Protocol: unitProtocol()}); err == nil {
		t.Error("zero PCIe bandwidth accepted")
	}
	bad := unitProtocol()
	bad.Factors[0] = 0
	if _, err := NewFabric(ps, []*platform.Host{h}, FabricConfig{Nodes: 1, NodeModel: SimpleNode, NICBW: 1, Protocol: bad}); err == nil {
		t.Error("invalid protocol accepted")
	}
}

func TestRankPlacement(t *testing.T) {
	f := testFabric(t, 3, 6, 1000, simpleCfg(1e9))
	if f.Ranks() != 18 {
		t.Errorf("Ranks = %d, want 18", f.Ranks())
	}
	if f.Node(0) != 0 || f.Node(5) != 0 || f.Node(6) != 1 || f.Node(17) != 2 {
		t.Error("Node placement wrong")
	}
	if f.Socket(0) != 0 || f.Socket(2) != 0 || f.Socket(3) != 1 || f.Socket(5) != 1 {
		t.Error("Socket placement wrong")
	}
}

func TestDeferStartCoalescesSameTimestamp(t *testing.T) {
	// Many sends issued at the same instant with equal latency must fold
	// into a single batched rate recomputation — count engine events to
	// verify they fire under one coalesced start event per distinct
	// latency class.
	cfg := simpleCfg(1e9)
	cfg.HostLatency = 0.001
	f := testFabric(t, 4, 6, 1e6, cfg)
	n := 0
	for i := 0; i < 12; i++ {
		src, dst := i, (i+6)%24
		f.Send(fmt.Sprintf("m%d", i), src, dst, 1<<14, func() { n++ })
	}
	// One pending coalescing event, not twelve.
	if got := f.ps.Engine.Pending(); got != 1 {
		t.Errorf("pending events = %d, want 1 (coalesced)", got)
	}
	if _, err := f.ps.Engine.Run(10000); err != nil {
		t.Fatal(err)
	}
	if n != 12 {
		t.Errorf("completions = %d, want 12", n)
	}
}

func TestSendToSelfIsImmediate(t *testing.T) {
	f := testFabric(t, 2, 6, 1000, simpleCfg(1e9))
	var done float64 = -1
	f.Send("self", 3, 3, 1<<20, func() { done = f.ps.Engine.Now() })
	if _, err := f.ps.Engine.Run(100); err != nil {
		t.Fatal(err)
	}
	if done != 0 {
		t.Errorf("self-send done at %v, want 0", done)
	}
}

func TestGridRows(t *testing.T) {
	cases := map[int]int{768: 24, 36: 6, 12: 3, 7: 1, 16: 4}
	for n, want := range cases {
		if got := gridRows(n); got != want {
			t.Errorf("gridRows(%d) = %d, want %d", n, got, want)
		}
	}
}
