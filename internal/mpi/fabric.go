// Package mpi implements the message-passing substrate of case study #2:
// an SMPI-style rank-level simulator where every MPI point-to-point
// message becomes a fluid transfer across the resources on its path —
// node-internal buses (NIC, X-Bus, PCIe) and network links — with the
// adaptive eager/rendez-vous protocol modeled as piecewise-constant
// multiplicative bandwidth factors, exactly as in the SMPI network model
// the paper's simulator uses. The package also provides the four Intel
// MPI Benchmarks kernels the ground truth was collected with: PingPong,
// PingPing, BiRandom, and Stencil.
package mpi

import (
	"fmt"
	"math"

	"simcal/internal/flow"
	"simcal/internal/platform"
)

// NodeModel selects the compute-node level of detail.
type NodeModel int

const (
	// SimpleNode abstracts the node as cores behind a single NIC
	// resource.
	SimpleNode NodeModel = iota
	// ComplexNode models two sockets bridged by an X-Bus, each reaching
	// the NIC through its own PCIe bus — closer to a Summit node.
	ComplexNode
)

func (m NodeModel) String() string {
	if m == ComplexNode {
		return "complex"
	}
	return "simple"
}

// Protocol is the adaptive MPI protocol model: below ChangePoints[0]
// bytes the transfer rate is scaled by Factors[0], between the change
// points by Factors[1], and above by Factors[2].
type Protocol struct {
	Factors      [3]float64
	ChangePoints [2]float64 // bytes, ascending
}

// Factor returns the bandwidth factor for a message of the given size.
func (p Protocol) Factor(bytes float64) float64 {
	switch {
	case bytes < p.ChangePoints[0]:
		return p.Factors[0]
	case bytes < p.ChangePoints[1]:
		return p.Factors[1]
	default:
		return p.Factors[2]
	}
}

// Validate rejects non-positive factors or disordered change points.
func (p Protocol) Validate() error {
	for _, f := range p.Factors {
		if f <= 0 || math.IsNaN(f) {
			return fmt.Errorf("mpi: non-positive protocol factor %g", f)
		}
	}
	if p.ChangePoints[0] > p.ChangePoints[1] {
		return fmt.Errorf("mpi: change points out of order: %g > %g", p.ChangePoints[0], p.ChangePoints[1])
	}
	return nil
}

// FabricConfig configures rank placement and node internals.
type FabricConfig struct {
	Nodes        int
	RanksPerNode int // default 6, matching the paper's Summit runs
	NodeModel    NodeModel

	// NICBW is the per-node NIC bandwidth (bytes/s) for SimpleNode.
	NICBW float64
	// XBusBW and PCIeBW are the per-node bus bandwidths (bytes/s) for
	// ComplexNode.
	XBusBW, PCIeBW float64
	// HostLatency is the per-message software/injection latency (s).
	HostLatency float64

	Protocol Protocol
}

// Fabric wires ranks onto a routed platform and sends messages.
type Fabric struct {
	cfg   FabricConfig
	ps    *platform.Sim
	hosts []*platform.Host

	nic  []*flow.Resource   // SimpleNode: one per node
	xbus []*flow.Resource   // ComplexNode: one per node
	pcie [][]*flow.Resource // ComplexNode: per node, per socket

	pending map[float64]*[]func()
}

// NewFabric builds a fabric over the given simulation harness. hosts must
// be the platform's compute nodes, len(hosts) == cfg.Nodes, with routes
// installed between every pair (via a topology builder).
func NewFabric(ps *platform.Sim, hosts []*platform.Host, cfg FabricConfig) (*Fabric, error) {
	if cfg.Nodes != len(hosts) || cfg.Nodes < 1 {
		return nil, fmt.Errorf("mpi: %d hosts for %d nodes", len(hosts), cfg.Nodes)
	}
	if cfg.RanksPerNode <= 0 {
		cfg.RanksPerNode = 6
	}
	if err := cfg.Protocol.Validate(); err != nil {
		return nil, err
	}
	f := &Fabric{cfg: cfg, ps: ps, hosts: hosts, pending: make(map[float64]*[]func())}
	switch cfg.NodeModel {
	case SimpleNode:
		if cfg.NICBW <= 0 {
			return nil, fmt.Errorf("mpi: SimpleNode requires positive NIC bandwidth")
		}
		for i := range hosts {
			f.nic = append(f.nic, flow.NewResource(fmt.Sprintf("nic-%d", i), cfg.NICBW))
		}
	case ComplexNode:
		if cfg.XBusBW <= 0 || cfg.PCIeBW <= 0 {
			return nil, fmt.Errorf("mpi: ComplexNode requires positive X-Bus and PCIe bandwidths")
		}
		for i := range hosts {
			f.xbus = append(f.xbus, flow.NewResource(fmt.Sprintf("xbus-%d", i), cfg.XBusBW))
			f.pcie = append(f.pcie, []*flow.Resource{
				flow.NewResource(fmt.Sprintf("pcie-%d-s0", i), cfg.PCIeBW),
				flow.NewResource(fmt.Sprintf("pcie-%d-s1", i), cfg.PCIeBW),
			})
		}
	default:
		return nil, fmt.Errorf("mpi: unknown node model %d", cfg.NodeModel)
	}
	return f, nil
}

// Ranks returns the total number of MPI ranks.
func (f *Fabric) Ranks() int { return f.cfg.Nodes * f.cfg.RanksPerNode }

// Node returns the node index hosting rank r.
func (f *Fabric) Node(r int) int { return r / f.cfg.RanksPerNode }

// Socket returns the socket index (0 or 1) hosting rank r within its
// node: the first half of a node's ranks live on socket 0.
func (f *Fabric) Socket(r int) int {
	if r%f.cfg.RanksPerNode < (f.cfg.RanksPerNode+1)/2 {
		return 0
	}
	return 1
}

// Engine exposes the underlying event engine (for benchmarks).
func (f *Fabric) Engine() interface{ Now() float64 } { return f.ps.Engine }

// Send simulates a point-to-point message of size bytes from rank src to
// rank dst, calling onDone at completion. The protocol factor scales the
// effective bandwidth on every traversed resource; host latency plus the
// route latency elapse before the fluid phase.
func (f *Fabric) Send(name string, src, dst int, bytes float64, onDone func()) {
	if src == dst {
		f.ps.Engine.After(0, onDone)
		return
	}
	factor := f.cfg.Protocol.Factor(bytes)
	weight := 1 / factor
	srcNode, dstNode := f.Node(src), f.Node(dst)
	var usage []flow.Usage
	latency := f.cfg.HostLatency

	if srcNode == dstNode {
		if f.cfg.NodeModel == ComplexNode && f.Socket(src) != f.Socket(dst) {
			usage = append(usage, flow.Usage{Res: f.xbus[srcNode], Weight: weight})
		}
		// Same-socket (or simple-node local) messages are latency-only.
	} else {
		switch f.cfg.NodeModel {
		case SimpleNode:
			usage = append(usage, flow.Usage{Res: f.nic[srcNode], Weight: weight})
		case ComplexNode:
			usage = append(usage, flow.Usage{Res: f.pcie[srcNode][f.Socket(src)], Weight: weight})
		}
		route := f.ps.Platform.RouteBetween(f.hosts[srcNode], f.hosts[dstNode])
		for _, l := range route {
			usage = append(usage, flow.Usage{Res: l.Res, Weight: weight})
		}
		latency += route.Latency()
		switch f.cfg.NodeModel {
		case SimpleNode:
			usage = append(usage, flow.Usage{Res: f.nic[dstNode], Weight: weight})
		case ComplexNode:
			usage = append(usage, flow.Usage{Res: f.pcie[dstNode][f.Socket(dst)], Weight: weight})
		}
	}

	start := func() {
		f.ps.System.StartActivity(name, bytes, 0, usage, onDone)
	}
	if latency > 0 {
		f.deferStart(latency, start)
	} else {
		f.ps.System.Batch(start)
	}
}

// deferStart coalesces all starts that land on the same timestamp into
// one batched rate recomputation — crucial when hundreds of ranks begin
// an exchange round simultaneously.
func (f *Fabric) deferStart(delay float64, fn func()) {
	t := f.ps.Engine.Now() + delay
	if lst, ok := f.pending[t]; ok {
		*lst = append(*lst, fn)
		return
	}
	lst := &[]func(){fn}
	f.pending[t] = lst
	f.ps.Engine.At(t, func() {
		delete(f.pending, t)
		f.ps.System.Batch(func() {
			for _, g := range *lst {
				g()
			}
		})
	})
}
