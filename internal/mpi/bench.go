package mpi

import (
	"fmt"
	"math"

	"simcal/internal/stats"
)

// Benchmark identifies one of the IMB kernels the ground truth covers.
type Benchmark string

// The four IMB benchmarks of the paper's ground truth.
const (
	PingPong Benchmark = "PingPong"
	PingPing Benchmark = "PingPing"
	BiRandom Benchmark = "BiRandom"
	Stencil  Benchmark = "Stencil"
)

// AllBenchmarks lists the four kernels.
var AllBenchmarks = []Benchmark{PingPong, PingPing, BiRandom, Stencil}

// RunSpec parameterizes one benchmark execution.
type RunSpec struct {
	Benchmark Benchmark
	// MsgBytes is the message size (the paper sweeps 2^10 … 2^22).
	MsgBytes float64
	// Rounds is the number of exchange rounds (default 4).
	Rounds int
	// Seed drives the BiRandom pairing (deterministic per seed).
	Seed int64
}

// Run executes the benchmark on the fabric and returns the aggregate
// data transfer rate in bytes/s: total payload moved divided by the
// simulated execution time.
func Run(f *Fabric, spec RunSpec) (float64, error) {
	if spec.MsgBytes <= 0 {
		return nil2(fmt.Errorf("mpi: non-positive message size"))
	}
	rounds := spec.Rounds
	if rounds <= 0 {
		rounds = 4
	}
	n := f.Ranks()
	if n < 2 {
		return nil2(fmt.Errorf("mpi: need at least 2 ranks"))
	}
	start := f.ps.Engine.Now()
	var totalBytes float64
	switch spec.Benchmark {
	case PingPong:
		totalBytes = runPingPong(f, spec.MsgBytes, rounds)
	case PingPing:
		totalBytes = runPingPing(f, spec.MsgBytes, rounds)
	case BiRandom:
		totalBytes = runBiRandom(f, spec.MsgBytes, rounds, spec.Seed)
	case Stencil:
		totalBytes = runStencil(f, spec.MsgBytes, rounds)
	default:
		return nil2(fmt.Errorf("mpi: unknown benchmark %q", spec.Benchmark))
	}
	if _, err := f.ps.Engine.Run(eventBudget(n, rounds)); err != nil {
		return 0, fmt.Errorf("mpi: %s: %w", spec.Benchmark, err)
	}
	elapsed := f.ps.Engine.Now() - start
	if elapsed <= 0 {
		return 0, fmt.Errorf("mpi: %s: zero elapsed time", spec.Benchmark)
	}
	return totalBytes / elapsed, nil
}

func nil2(err error) (float64, error) { return 0, err }

func eventBudget(ranks, rounds int) int {
	return 100*ranks*rounds + 100000
}

// runPingPong pairs rank i with rank i+n/2 and bounces a message back
// and forth `rounds` times per pair; pairs progress independently, as in
// IMB-P2P.
func runPingPong(f *Fabric, msg float64, rounds int) float64 {
	n := f.Ranks()
	half := n / 2
	f.ps.System.Batch(func() {
		for i := 0; i < half; i++ {
			a, b := i, i+half
			bounce(f, a, b, msg, 2*rounds, 0)
		}
	})
	return float64(half) * float64(2*rounds) * msg
}

// bounce sends a→b then b→a, `hops` times total.
func bounce(f *Fabric, a, b int, msg float64, hops, k int) {
	if k >= hops {
		return
	}
	src, dst := a, b
	if k%2 == 1 {
		src, dst = b, a
	}
	f.Send(fmt.Sprintf("pp-%d-%d-%d", a, b, k), src, dst, msg, func() {
		bounce(f, a, b, msg, hops, k+1)
	})
}

// runPingPing has both partners of each pair send simultaneously each
// round; a pair's next round starts when both of its messages arrive.
func runPingPing(f *Fabric, msg float64, rounds int) float64 {
	n := f.Ranks()
	half := n / 2
	var roundOf func(a, b, k int)
	roundOf = func(a, b, k int) {
		if k >= rounds {
			return
		}
		outstanding := 2
		done := func() {
			outstanding--
			if outstanding == 0 {
				roundOf(a, b, k+1)
			}
		}
		f.Send(fmt.Sprintf("pi-%d-%d-%d-f", a, b, k), a, b, msg, done)
		f.Send(fmt.Sprintf("pi-%d-%d-%d-r", a, b, k), b, a, msg, done)
	}
	f.ps.System.Batch(func() {
		for i := 0; i < half; i++ {
			roundOf(i, i+half, 0)
		}
	})
	return float64(half) * float64(2*rounds) * msg
}

// runBiRandom draws a fresh random pairing every round; each pair
// exchanges bidirectionally, with a global barrier between rounds.
func runBiRandom(f *Fabric, msg float64, rounds int, seed int64) float64 {
	n := f.Ranks()
	rng := stats.NewRNG(seed)
	pairs := n / 2
	var runRound func(k int)
	runRound = func(k int) {
		if k >= rounds {
			return
		}
		perm := rng.Perm(n)
		outstanding := 2 * pairs
		done := func() {
			outstanding--
			if outstanding == 0 {
				runRound(k + 1)
			}
		}
		f.ps.System.Batch(func() {
			for p := 0; p < pairs; p++ {
				a, b := perm[2*p], perm[2*p+1]
				f.Send(fmt.Sprintf("br-%d-%d-f", k, p), a, b, msg, done)
				f.Send(fmt.Sprintf("br-%d-%d-r", k, p), b, a, msg, done)
			}
		})
	}
	runRound(0)
	return float64(2*pairs) * float64(rounds) * msg
}

// runStencil arranges ranks in a 2D torus and exchanges with the four
// neighbors each round, with a global barrier between rounds — the
// IMB-P2P Stencil2D pattern.
func runStencil(f *Fabric, msg float64, rounds int) float64 {
	n := f.Ranks()
	rows := gridRows(n)
	cols := n / rows
	used := rows * cols // ranks beyond the grid sit out
	var runRound func(k int)
	runRound = func(k int) {
		if k >= rounds {
			return
		}
		outstanding := 4 * used
		done := func() {
			outstanding--
			if outstanding == 0 {
				runRound(k + 1)
			}
		}
		f.ps.System.Batch(func() {
			for r := 0; r < rows; r++ {
				for c := 0; c < cols; c++ {
					self := r*cols + c
					neighbors := [4]int{
						((r+1)%rows)*cols + c,
						((r-1+rows)%rows)*cols + c,
						r*cols + (c+1)%cols,
						r*cols + (c-1+cols)%cols,
					}
					for d, nb := range neighbors {
						f.Send(fmt.Sprintf("st-%d-%d-%d", k, self, d), self, nb, msg, done)
					}
				}
			}
		})
	}
	runRound(0)
	return float64(4*used) * float64(rounds) * msg
}

// gridRows returns the largest divisor of n that is ≤ √n, giving the
// most square 2D factorization.
func gridRows(n int) int {
	best := 1
	for r := 1; r <= int(math.Sqrt(float64(n))); r++ {
		if n%r == 0 {
			best = r
		}
	}
	return best
}
