// Package wfgen generates the workflow benchmarks of the paper's Table 1:
// WfCommons-style task graphs for five scientific applications
// (Epigenomics, 1000Genome, SoyKB, Montage, Seismology) and two synthetic
// patterns (Chain, Forkjoin), parameterized by workflow size (number of
// tasks), per-task sequential CPU work, and total data footprint.
//
// The generated graphs reproduce the *structural* properties that drive
// simulator behavior — level widths, fan-out/fan-in, split/merge
// pipelines, and data flow along edges — standing in for the WfCommons
// benchmark generator used to produce the paper's ground truth.
package wfgen

import (
	"fmt"

	"simcal/internal/workflow"
)

// App identifies a benchmark application from Table 1.
type App string

// The applications of Table 1.
const (
	Epigenomics App = "epigenomics"
	Genome1000  App = "1000genome"
	SoyKB       App = "soykb"
	Montage     App = "montage"
	Seismology  App = "seismology"
	Chain       App = "chain"
	Forkjoin    App = "forkjoin"
)

// RefCoreSpeed converts Table 1's "sequential work per task" seconds to
// machine-independent ops: a task with w seconds of work carries
// w×RefCoreSpeed ops and takes w seconds on a reference 1 Gop/s core.
const RefCoreSpeed = 1e9

// MB is one megabyte in bytes, the unit of Table 1's data footprints.
const MB = 1e6

// Spec describes one benchmark configuration.
type Spec struct {
	App App
	// Tasks is the workflow size (Table 1 column "Workflow Size").
	Tasks int
	// WorkSeconds is the per-task sequential work in seconds on the
	// reference core (Table 1 column "Sequential Work / task").
	WorkSeconds float64
	// FootprintBytes is the total size of all workflow files, including
	// intermediates (Table 1 column "Data Footprint", converted to bytes).
	FootprintBytes float64
}

// Name returns the canonical benchmark name for the spec.
func (s Spec) Name() string {
	return fmt.Sprintf("%s-n%d-w%g-d%gMB", s.App, s.Tasks, s.WorkSeconds, s.FootprintBytes/MB)
}

// AppSpec lists the parameter values Table 1 enumerates for one
// application.
type AppSpec struct {
	Sizes        []int
	WorkSeconds  []float64
	FootprintsMB []float64
}

// Table1 reproduces the paper's Table 1: per-application workflow sizes,
// per-task sequential work values, and data footprints.
var Table1 = map[App]AppSpec{
	Epigenomics: {
		Sizes:        []int{43, 64, 86, 129, 215},
		WorkSeconds:  []float64{0.6, 1.15, 1.73, 7.22, 73.25},
		FootprintsMB: []float64{0, 150, 1500, 15000},
	},
	Genome1000: {
		Sizes:        []int{54, 81, 108, 162, 270},
		WorkSeconds:  []float64{0.9, 1.47, 2.11, 8.02, 80.94},
		FootprintsMB: []float64{0, 150, 1500, 15000},
	},
	SoyKB: {
		Sizes:        []int{98, 147, 196, 294, 490},
		WorkSeconds:  []float64{0.53, 1.06, 1.6, 6.55, 74.21},
		FootprintsMB: []float64{0, 150, 1500, 15000},
	},
	Montage: {
		Sizes:        []int{60, 90, 120, 180, 300},
		WorkSeconds:  []float64{0.59, 1.12, 1.75, 7.07, 73.13},
		FootprintsMB: []float64{0, 150, 1500, 15000},
	},
	Seismology: {
		Sizes:        []int{103, 154, 206, 309, 515},
		WorkSeconds:  []float64{0.74, 1.28, 1.91, 8.34, 86.25},
		FootprintsMB: []float64{0, 150, 1500, 15000},
	},
	Chain: {
		Sizes:        []int{10, 25, 50},
		WorkSeconds:  []float64{0.83, 1.36, 1.85, 5.74, 48.94},
		FootprintsMB: []float64{0, 150, 1500},
	},
	Forkjoin: {
		Sizes:        []int{10, 25, 50},
		WorkSeconds:  []float64{0.84, 1.39, 2.05, 7.61, 70.76},
		FootprintsMB: []float64{0, 150, 1500},
	},
}

// RealApps lists the five real-application benchmarks.
var RealApps = []App{Epigenomics, Genome1000, SoyKB, Montage, Seismology}

// AllApps lists every benchmark application including synthetic patterns.
var AllApps = []App{Epigenomics, Genome1000, SoyKB, Montage, Seismology, Chain, Forkjoin}

// Generate builds the workflow for a spec. The structure is
// deterministic; task work is uniform across tasks (the benchmarks are
// designed that way) and the data footprint is spread evenly over all
// files. It panics on unknown applications or non-positive sizes.
func Generate(spec Spec) *workflow.Workflow {
	if spec.Tasks < 1 {
		panic("wfgen: workflow size must be >= 1")
	}
	var levels []level
	switch spec.App {
	case Epigenomics:
		levels = epigenomicsLevels(spec.Tasks)
	case Genome1000:
		levels = genome1000Levels(spec.Tasks)
	case SoyKB:
		levels = soykbLevels(spec.Tasks)
	case Montage:
		levels = montageLevels(spec.Tasks)
	case Seismology:
		levels = seismologyLevels(spec.Tasks)
	case Chain:
		levels = chainLevels(spec.Tasks)
	case Forkjoin:
		levels = forkjoinLevels(spec.Tasks)
	default:
		panic(fmt.Sprintf("wfgen: unknown application %q", spec.App))
	}
	return build(spec, levels)
}

// wiring describes how a level connects to its predecessor.
type wiring int

const (
	// wireBlock partitions the previous level into contiguous blocks,
	// one per task of this level (fan-in), or fans a narrower previous
	// level out over this one (fan-out).
	wireBlock wiring = iota
	// wireAll connects every task of the previous level to every task of
	// this level.
	wireAll
)

// level is one stage of a workflow: a name, a width, and how it wires to
// the stage before it.
type level struct {
	name  string
	width int
	wire  wiring
}

// distribute splits total into k parts differing by at most one.
func distribute(total, k int) []int {
	out := make([]int, k)
	for i := range out {
		out[i] = total / k
	}
	for i := 0; i < total%k; i++ {
		out[i]++
	}
	return out
}

func epigenomicsLevels(n int) []level {
	// split(1) → filter(m) → sol2sanger(m) → fast2bfq(m) → map(m) →
	// merge(1) → index(1) → pileup(1): n = 4m + 4.
	if n < 9 {
		return []level{{"split", 1, wireBlock}, {"map", max(1, n-2), wireBlock}, {"merge", 1, wireBlock}}
	}
	wide := distribute(n-4, 4)
	return []level{
		{"split", 1, wireBlock},
		{"filter", wide[0], wireBlock},
		{"sol2sanger", wide[1], wireBlock},
		{"fast2bfq", wide[2], wireBlock},
		{"map", wide[3], wireBlock},
		{"merge", 1, wireBlock},
		{"index", 1, wireBlock},
		{"pileup", 1, wireBlock},
	}
}

func genome1000Levels(n int) []level {
	// individuals (wide, roots) → individuals_merge (≈10%) →
	// analysis: mutation_overlap + frequency (≈40%, all-to-all on merges).
	a := n / 2
	b := max(1, n/10)
	c := n - a - b
	if c < 1 {
		c = 1
		a = n - b - c
	}
	return []level{
		{"individuals", a, wireBlock},
		{"merge", b, wireBlock},
		{"analysis", c, wireAll},
	}
}

func soykbLevels(n int) []level {
	// s per-sample chains of 4 stages, then combine(1) → genotype(1):
	// n = 4s + 2.
	if n < 6 {
		return chainLevels(n)
	}
	wide := distribute(n-2, 4)
	return []level{
		{"align", wide[0], wireBlock},
		{"sort", wide[1], wireBlock},
		{"dedup", wide[2], wireBlock},
		{"haplotype", wide[3], wireBlock},
		{"combine", 1, wireBlock},
		{"genotype", 1, wireBlock},
	}
}

func montageLevels(n int) []level {
	// mProject(w) → mDiffFit(d≈1.5w) → mConcatFit(1) → mBgModel(1) →
	// mBackground(w) → 4 serial tail tasks. n = 2w + d + 6.
	if n < 13 {
		return forkjoinLevels(n)
	}
	w := (n - 6) * 2 / 7
	if w < 1 {
		w = 1
	}
	d := n - 2*w - 6
	if d < 1 {
		d = 1
		w = (n - 7) / 2
	}
	return []level{
		{"mProject", w, wireBlock},
		{"mDiffFit", d, wireBlock},
		{"mConcatFit", 1, wireBlock},
		{"mBgModel", 1, wireBlock},
		{"mBackground", w, wireBlock},
		{"mImgtbl", 1, wireBlock},
		{"mAdd", 1, wireBlock},
		{"mShrink", 1, wireBlock},
		{"mJPEG", 1, wireBlock},
	}
}

func seismologyLevels(n int) []level {
	// Wide deconvolution fan-in to a single wrapper task.
	return []level{
		{"sG1IterDecon", max(1, n-1), wireBlock},
		{"wrapper", 1, wireBlock},
	}
}

func chainLevels(n int) []level {
	levels := make([]level, n)
	for i := range levels {
		levels[i] = level{fmt.Sprintf("stage%03d", i), 1, wireBlock}
	}
	return levels
}

func forkjoinLevels(n int) []level {
	if n <= 2 {
		return chainLevels(n)
	}
	return []level{
		{"fork", 1, wireBlock},
		{"work", n - 2, wireBlock},
		{"join", 1, wireBlock},
	}
}

// build assembles the workflow from levels: tasks, dependencies, files,
// and the evenly spread data footprint.
func build(spec Spec, levels []level) *workflow.Workflow {
	w := workflow.New(spec.Name())
	workOps := spec.WorkSeconds * RefCoreSpeed
	var prev []*workflow.Task
	total := 0
	for li, lv := range levels {
		cur := make([]*workflow.Task, lv.width)
		for i := range cur {
			t := &workflow.Task{
				Name: fmt.Sprintf("%s_%02d_%04d", lv.name, li, i),
				Work: workOps,
			}
			w.AddTask(t)
			cur[i] = t
			total++
		}
		if li > 0 {
			wire(w, prev, cur, lv.wire)
		}
		prev = cur
	}
	if total != spec.Tasks {
		// Level arithmetic distributes remainders; sizes always match by
		// construction. A mismatch is a generator bug.
		panic(fmt.Sprintf("wfgen: generated %d tasks for spec of %d", total, spec.Tasks))
	}
	attachFiles(w, spec.FootprintBytes)
	if err := w.Validate(); err != nil {
		panic("wfgen: generated invalid workflow: " + err.Error())
	}
	return w
}

// wire connects two consecutive levels.
func wire(w *workflow.Workflow, parents, children []*workflow.Task, mode wiring) {
	switch mode {
	case wireAll:
		for _, p := range parents {
			for _, c := range children {
				w.AddDependency(p, c)
			}
		}
	default: // wireBlock
		if len(parents) >= len(children) {
			// Fan-in: contiguous blocks of parents per child.
			blocks := distribute(len(parents), len(children))
			idx := 0
			for ci, c := range children {
				for k := 0; k < blocks[ci]; k++ {
					w.AddDependency(parents[idx], c)
					idx++
				}
			}
		} else {
			// Fan-out: contiguous blocks of children per parent.
			blocks := distribute(len(children), len(parents))
			idx := 0
			for pi, p := range parents {
				for k := 0; k < blocks[pi]; k++ {
					w.AddDependency(p, children[idx])
					idx++
				}
			}
		}
	}
}

// attachFiles gives every task one output file, every root one workflow
// input file, and wires child inputs to parent outputs. The footprint is
// spread evenly over all files.
func attachFiles(w *workflow.Workflow, footprint float64) {
	nFiles := len(w.Tasks) + len(w.Roots())
	size := 0.0
	if nFiles > 0 {
		size = footprint / float64(nFiles)
	}
	for _, t := range w.Tasks {
		out := t.Name + "_out"
		w.AddFile(out, size)
		t.Outputs = []string{out}
	}
	for _, t := range w.Tasks {
		if len(t.Parents) == 0 {
			in := t.Name + "_in"
			w.AddFile(in, size)
			t.Inputs = []string{in}
			continue
		}
		for _, p := range t.Parents {
			t.Inputs = append(t.Inputs, p+"_out")
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
