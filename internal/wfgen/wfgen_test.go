package wfgen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable1SizesGenerateExactly(t *testing.T) {
	for app, spec := range Table1 {
		for _, n := range spec.Sizes {
			w := Generate(Spec{App: app, Tasks: n, WorkSeconds: 1, FootprintBytes: 1500 * MB})
			if w.Size() != n {
				t.Errorf("%s size %d: generated %d tasks", app, n, w.Size())
			}
			if err := w.Validate(); err != nil {
				t.Errorf("%s size %d: invalid: %v", app, n, err)
			}
		}
	}
}

func TestWorkMatchesSpec(t *testing.T) {
	spec := Spec{App: Montage, Tasks: 60, WorkSeconds: 1.12, FootprintBytes: 0}
	w := Generate(spec)
	for _, task := range w.Tasks {
		if task.Work != 1.12*RefCoreSpeed {
			t.Fatalf("task work = %v, want %v", task.Work, 1.12*RefCoreSpeed)
		}
	}
	wantTotal := 1.12 * RefCoreSpeed * 60
	if math.Abs(w.TotalWork()-wantTotal) > 1 {
		t.Errorf("total work = %v, want %v", w.TotalWork(), wantTotal)
	}
}

func TestFootprintMatchesSpec(t *testing.T) {
	for _, fp := range []float64{0, 150 * MB, 1500 * MB, 15000 * MB} {
		w := Generate(Spec{App: Epigenomics, Tasks: 43, WorkSeconds: 1, FootprintBytes: fp})
		got := w.DataFootprint()
		if math.Abs(got-fp) > 1e-3*math.Max(fp, 1) {
			t.Errorf("footprint %v: generated %v", fp, got)
		}
	}
}

func TestChainIsLinear(t *testing.T) {
	w := Generate(Spec{App: Chain, Tasks: 10, WorkSeconds: 1, FootprintBytes: 0})
	if len(w.Roots()) != 1 {
		t.Fatalf("chain has %d roots, want 1", len(w.Roots()))
	}
	for _, task := range w.Tasks {
		if len(task.Children) > 1 || len(task.Parents) > 1 {
			t.Fatalf("chain task %s has fan: %d parents, %d children", task.Name, len(task.Parents), len(task.Children))
		}
	}
	// Critical path must cover all work.
	if w.CriticalPathWork() != w.TotalWork() {
		t.Error("chain critical path != total work")
	}
}

func TestForkjoinShape(t *testing.T) {
	w := Generate(Spec{App: Forkjoin, Tasks: 25, WorkSeconds: 1, FootprintBytes: 0})
	roots := w.Roots()
	if len(roots) != 1 {
		t.Fatalf("forkjoin has %d roots, want 1", len(roots))
	}
	if len(roots[0].Children) != 23 {
		t.Errorf("fork fan-out = %d, want 23", len(roots[0].Children))
	}
	// Critical path = 3 tasks of work.
	if w.CriticalPathWork() != 3*1*RefCoreSpeed {
		t.Errorf("forkjoin critical path = %v, want 3e9", w.CriticalPathWork())
	}
}

func TestSeismologyShape(t *testing.T) {
	w := Generate(Spec{App: Seismology, Tasks: 103, WorkSeconds: 1, FootprintBytes: 0})
	if len(w.Roots()) != 102 {
		t.Errorf("seismology roots = %d, want 102", len(w.Roots()))
	}
}

func TestEpigenomicsIsPipelined(t *testing.T) {
	w := Generate(Spec{App: Epigenomics, Tasks: 43, WorkSeconds: 1, FootprintBytes: 0})
	if len(w.Roots()) != 1 {
		t.Errorf("epigenomics roots = %d, want 1 (split)", len(w.Roots()))
	}
	// Pipeline depth: split + 4 stages + merge + index + pileup = 8 tasks
	// of critical path.
	if got := w.CriticalPathWork() / RefCoreSpeed; got != 8 {
		t.Errorf("critical path = %v tasks, want 8", got)
	}
}

func TestMontageHasDiamondStructure(t *testing.T) {
	w := Generate(Spec{App: Montage, Tasks: 60, WorkSeconds: 1, FootprintBytes: 0})
	// mConcatFit and mBgModel are single-width necks.
	singles := 0
	for _, task := range w.Tasks {
		if len(task.Parents) > 1 {
			singles++
		}
	}
	if singles == 0 {
		t.Error("montage has no fan-in tasks")
	}
}

func TestGenome1000HasAllToAllStage(t *testing.T) {
	w := Generate(Spec{App: Genome1000, Tasks: 54, WorkSeconds: 1, FootprintBytes: 0})
	// Analysis tasks depend on every merge task.
	maxParents := 0
	for _, task := range w.Tasks {
		if len(task.Parents) > maxParents {
			maxParents = len(task.Parents)
		}
	}
	if maxParents < 2 {
		t.Error("1000genome missing all-to-all analysis stage")
	}
}

func TestSpecName(t *testing.T) {
	s := Spec{App: SoyKB, Tasks: 98, WorkSeconds: 0.53, FootprintBytes: 150 * MB}
	if s.Name() != "soykb-n98-w0.53-d150MB" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	spec := Spec{App: Genome1000, Tasks: 108, WorkSeconds: 2.11, FootprintBytes: 1500 * MB}
	a, b := Generate(spec), Generate(spec)
	if a.Size() != b.Size() {
		t.Fatal("nondeterministic size")
	}
	for i := range a.Tasks {
		if a.Tasks[i].Name != b.Tasks[i].Name || a.Tasks[i].Work != b.Tasks[i].Work {
			t.Fatal("nondeterministic task list")
		}
	}
}

func TestUnknownAppPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("unknown app accepted")
		}
	}()
	Generate(Spec{App: "nonesuch", Tasks: 10, WorkSeconds: 1})
}

func TestBadSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero size accepted")
		}
	}()
	Generate(Spec{App: Chain, Tasks: 0, WorkSeconds: 1})
}

// Property: any app×size in a broad range generates a valid workflow of
// exactly that size with the requested footprint.
func TestGenerateProperty(t *testing.T) {
	apps := AllApps
	f := func(appIdx uint8, size uint8, fpMB uint8) bool {
		app := apps[int(appIdx)%len(apps)]
		n := 10 + int(size)%500
		fp := float64(fpMB) * MB
		w := Generate(Spec{App: app, Tasks: n, WorkSeconds: 1, FootprintBytes: fp})
		if w.Size() != n {
			return false
		}
		if err := w.Validate(); err != nil {
			return false
		}
		return math.Abs(w.DataFootprint()-fp) < 1e-3*(fp+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDistribute(t *testing.T) {
	parts := distribute(10, 3)
	sum := 0
	for _, p := range parts {
		sum += p
		if p < 3 || p > 4 {
			t.Errorf("unbalanced part %d", p)
		}
	}
	if sum != 10 {
		t.Errorf("distribute sum = %d, want 10", sum)
	}
}
