// Package stats provides the statistical utilities shared across the
// calibration framework and the case-study simulators: seeded random
// streams, distribution sampling, summary statistics, and the accuracy
// metrics used by the paper (relative error, relative L1 distance, and
// explained variance).
package stats

import (
	"math"
	"math/rand"
	"sort"
)

// RNG is a seeded, reproducible random stream. It wraps math/rand with a
// fixed source so that every experiment in the repository is
// deterministic given its seed.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a new random stream seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uniform returns a uniform sample in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 { return lo + (hi-lo)*g.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Int63 returns a non-negative pseudo-random 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Normal returns a sample from N(mu, sigma²).
func (g *RNG) Normal(mu, sigma float64) float64 { return mu + sigma*g.r.NormFloat64() }

// LogNormal returns a sample from the log-normal distribution whose
// underlying normal has the given mu and sigma.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(g.Normal(mu, sigma))
}

// NoisyScale returns a multiplicative noise factor with mean ~1 and the
// given relative spread, drawn from a log-normal distribution. A spread
// of 0 returns exactly 1.
func (g *RNG) NoisyScale(spread float64) float64 {
	if spread <= 0 {
		return 1
	}
	sigma := math.Log1p(spread)
	return g.LogNormal(-sigma*sigma/2, sigma)
}

// Perm returns a pseudo-random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Shuffle randomizes the order of n elements using swap.
func (g *RNG) Shuffle(n int, swap func(i, j int)) { g.r.Shuffle(n, swap) }

// Fork returns a new independent stream derived from this one. Forked
// streams let concurrent components consume randomness without
// perturbing each other's sequences.
func (g *RNG) Fork() *RNG { return NewRNG(g.r.Int63()) }

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the minimum of xs. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty slice")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs. It panics on an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Median of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. It panics on an empty slice.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		panic("stats: Quantile of empty slice")
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// RelError returns |truth − estimate| / |truth|. When truth is zero it
// falls back to the absolute error so that the metric stays finite.
func RelError(truth, estimate float64) float64 {
	d := math.Abs(truth - estimate)
	if truth == 0 {
		return d
	}
	return d / math.Abs(truth)
}

// RelL1 returns the relative L1 distance between two equal-length
// vectors: Σ_i |a_i − b_i| / max(|b_i|, eps), with b taken as the
// reference. This is the paper's "calibration error" metric (modulo the
// ×100 scaling applied by callers that report percentages).
func RelL1(a, b []float64, eps float64) float64 {
	if len(a) != len(b) {
		panic("stats: RelL1 length mismatch")
	}
	if eps <= 0 {
		eps = 1e-12
	}
	s := 0.0
	for i := range a {
		den := math.Abs(b[i])
		if den < eps {
			den = eps
		}
		s += math.Abs(a[i]-b[i]) / den
	}
	return s
}

// ExplainedVariance quantifies how representative a single model value is
// of a set of noisy measured samples, following the paper's definition:
// a/b where a is the L1 distance between the samples and the model value
// and b is the L1 distance between the samples and their mean. The closer
// to 1 (from above), the better the model value matches the samples; a
// perfect match of a noiseless sample set returns 0/0 → defined as 1.
func ExplainedVariance(samples []float64, model float64) float64 {
	if len(samples) == 0 {
		panic("stats: ExplainedVariance of empty sample set")
	}
	m := Mean(samples)
	a, b := 0.0, 0.0
	for _, s := range samples {
		a += math.Abs(s - model)
		b += math.Abs(s - m)
	}
	if b == 0 {
		if a == 0 {
			return 1
		}
		// Noise-free samples: report the distance scaled by the mean so
		// that the loss remains informative rather than infinite.
		den := math.Abs(m)
		if den == 0 {
			den = 1
		}
		return 1 + a/den
	}
	return a / b
}
