package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different streams")
		}
	}
}

func TestRNGForkIndependence(t *testing.T) {
	a := NewRNG(1)
	f1 := a.Fork()
	f2 := a.Fork()
	if f1.Float64() == f2.Float64() && f1.Float64() == f2.Float64() && f1.Float64() == f2.Float64() {
		t.Error("forked streams look identical")
	}
}

func TestUniformRange(t *testing.T) {
	g := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := g.Uniform(2, 5)
		if v < 2 || v >= 5 {
			t.Fatalf("Uniform(2,5) = %v out of range", v)
		}
	}
}

func TestNormalMoments(t *testing.T) {
	g := NewRNG(4)
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.Normal(10, 2)
	}
	if m := Mean(xs); math.Abs(m-10) > 0.1 {
		t.Errorf("mean = %v, want ~10", m)
	}
	if s := StdDev(xs); math.Abs(s-2) > 0.1 {
		t.Errorf("stddev = %v, want ~2", s)
	}
}

func TestNoisyScale(t *testing.T) {
	g := NewRNG(5)
	if g.NoisyScale(0) != 1 {
		t.Error("NoisyScale(0) must be exactly 1")
	}
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = g.NoisyScale(0.1)
	}
	if m := Mean(xs); math.Abs(m-1) > 0.02 {
		t.Errorf("mean of NoisyScale(0.1) = %v, want ~1", m)
	}
	for _, x := range xs {
		if x <= 0 {
			t.Fatal("NoisyScale produced non-positive factor")
		}
	}
}

func TestSummaryStats(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if Mean(xs) != 2.5 {
		t.Error("Mean wrong")
	}
	if Min(xs) != 1 || Max(xs) != 4 {
		t.Error("Min/Max wrong")
	}
	if Median(xs) != 2.5 {
		t.Error("Median of even-length wrong")
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Error("Median of odd-length wrong")
	}
	if v := Variance([]float64{1, 1, 1}); v != 0 {
		t.Errorf("Variance of constants = %v, want 0", v)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 {
		t.Error("empty-slice mean/variance should be 0")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 0}, {0.25, 1}, {0.5, 2}, {0.75, 3}, {1, 4}, {-0.5, 0}, {1.5, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestRelError(t *testing.T) {
	if RelError(10, 12) != 0.2 {
		t.Error("RelError(10,12) != 0.2")
	}
	if RelError(0, 3) != 3 {
		t.Error("RelError with zero truth should be absolute")
	}
	if RelError(5, 5) != 0 {
		t.Error("RelError of equal values should be 0")
	}
}

func TestRelL1(t *testing.T) {
	got := RelL1([]float64{2, 4}, []float64{1, 8}, 1e-12)
	want := 1.0 + 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("RelL1 = %v, want %v", got, want)
	}
	if RelL1([]float64{1, 2}, []float64{1, 2}, 0) != 0 {
		t.Error("RelL1 of identical vectors should be 0")
	}
}

func TestExplainedVariance(t *testing.T) {
	samples := []float64{9, 10, 11}
	// Model exactly at the mean: a == b → 1.
	if ev := ExplainedVariance(samples, 10); math.Abs(ev-1) > 1e-12 {
		t.Errorf("EV at mean = %v, want 1", ev)
	}
	// Model far away: much larger than 1.
	if ev := ExplainedVariance(samples, 100); ev < 10 {
		t.Errorf("EV far away = %v, want large", ev)
	}
	// Noise-free samples matched exactly → 1.
	if ev := ExplainedVariance([]float64{5, 5, 5}, 5); ev != 1 {
		t.Errorf("EV of perfect noise-free match = %v, want 1", ev)
	}
	// Noise-free samples mismatched → finite and > 1.
	ev := ExplainedVariance([]float64{5, 5, 5}, 6)
	if math.IsInf(ev, 0) || ev <= 1 {
		t.Errorf("EV of imperfect noise-free match = %v, want finite > 1", ev)
	}
}

// Property: the model value minimizing the L1 distance to the samples is
// the median, so EV(median) <= EV(anything else).
func TestExplainedVarianceMedianOptimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 3 + g.Intn(10)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = g.Uniform(1, 100)
		}
		med := Median(xs)
		best := ExplainedVariance(xs, med)
		for trial := 0; trial < 10; trial++ {
			other := g.Uniform(0, 200)
			if ExplainedVariance(xs, other) < best-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: RelL1 is non-negative and zero iff vectors are equal.
func TestRelL1Property(t *testing.T) {
	f := func(seed int64) bool {
		g := NewRNG(seed)
		n := 1 + g.Intn(8)
		a := make([]float64, n)
		b := make([]float64, n)
		for i := range a {
			a[i] = g.Uniform(-10, 10)
			b[i] = g.Uniform(1, 10)
		}
		if RelL1(a, b, 1e-12) < 0 {
			return false
		}
		return RelL1(b, b, 1e-12) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestPermShuffle(t *testing.T) {
	g := NewRNG(9)
	p := g.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
	xs := []int{0, 1, 2, 3, 4, 5}
	g.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum := 0
	for _, v := range xs {
		sum += v
	}
	if sum != 15 {
		t.Error("Shuffle lost elements")
	}
}

func TestInt63NonNegative(t *testing.T) {
	g := NewRNG(13)
	for i := 0; i < 100; i++ {
		if g.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}

func TestMinMaxPanicOnEmpty(t *testing.T) {
	for i, fn := range []func(){func() { Min(nil) }, func() { Max(nil) }, func() { Median(nil) }, func() { Quantile(nil, 0.5) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic on empty input", i)
				}
			}()
			fn()
		}()
	}
}
